#include "obs/metrics.h"

#include <bit>
#include <sstream>

namespace dtl::obs {

namespace {

// Bucket index for a value: 0 holds {0}, bucket i holds [2^(i-1), 2^i).
size_t BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  const size_t idx = static_cast<size_t>(std::bit_width(value));
  return idx < Histogram::kNumBuckets ? idx : Histogram::kNumBuckets - 1;
}

void AppendJsonString(std::ostringstream* out, std::string_view s) {
  *out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') *out << '\\';
    *out << c;
  }
  *out << '"';
}

}  // namespace

void Histogram::Observe(uint64_t value) {
  const size_t bucket = BucketIndex(value);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < value &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
  // Windowed ring: same relaxed atomics into the active slot. A rotation
  // racing this lands the observation in the just-retired slot, which is
  // still inside any window that covers "now" — accepted and documented.
  WindowSlot& slot = slots_[active_slot_.load(std::memory_order_relaxed)];
  slot.count.fetch_add(1, std::memory_order_relaxed);
  slot.sum.fetch_add(value, std::memory_order_relaxed);
  slot.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
}

bool Histogram::MaybeRotate(uint64_t now_us) {
  const uint64_t width = slot_width_us_.load(std::memory_order_relaxed);
  {
    const uint32_t active = active_slot_.load(std::memory_order_relaxed);
    const uint64_t start = slots_[active].start_us.load(std::memory_order_relaxed);
    if (now_us < start + width) return false;  // hot early-exit, no lock
  }
  std::lock_guard<std::mutex> lock(rotate_mu_);
  const uint32_t active = active_slot_.load(std::memory_order_relaxed);
  const uint64_t start = slots_[active].start_us.load(std::memory_order_relaxed);
  if (now_us < start + width) return false;  // lost the race to another ticker
  if (!window_started_) {
    // First tick anchors the ring at `now_us` instead of rotating away data
    // observed before any clock source was attached (slot 0 starts at 0,
    // which would otherwise look expired under a steady clock).
    window_started_ = true;
    slots_[active].start_us.store(now_us, std::memory_order_relaxed);
    return false;
  }
  const uint32_t next = (active + 1) % kWindowSlots;
  WindowSlot& slot = slots_[next];
  slot.count.store(0, std::memory_order_relaxed);
  slot.sum.store(0, std::memory_order_relaxed);
  for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
  slot.start_us.store(now_us, std::memory_order_relaxed);
  active_slot_.store(next, std::memory_order_relaxed);
  return true;
}

HistogramSnapshot Histogram::WindowSnapshot(uint64_t window_us,
                                            uint64_t now_us) const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets);
  // Slots do not track their own max; report the lifetime max as an upper
  // bound (quantiles clamp to it).
  snap.max = max_.load(std::memory_order_relaxed);
  const uint64_t width = slot_width_us_.load(std::memory_order_relaxed);
  const uint32_t active = active_slot_.load(std::memory_order_relaxed);
  const uint64_t cutoff = now_us >= window_us ? now_us - window_us : 0;
  for (size_t i = 0; i < kWindowSlots; ++i) {
    const WindowSlot& slot = slots_[i];
    const uint64_t start = slot.start_us.load(std::memory_order_relaxed);
    // The active slot is "current" by definition; retired slots count only
    // while any part of [start, start + width) overlaps the window.
    if (i != active && start + width <= cutoff) continue;
    snap.count += slot.count.load(std::memory_order_relaxed);
    snap.sum += slot.sum.load(std::memory_order_relaxed);
    for (size_t b = 0; b < kNumBuckets; ++b) {
      snap.buckets[b] += slot.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

uint64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count));
  if (target < 1) target = 1;
  if (target > count) target = count;
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (cum < target) continue;
    if (i == 0) return 0;  // bucket 0 holds only the value 0
    const uint64_t upper =
        i >= 64 ? max : (uint64_t{1} << i) - 1;  // bucket i spans [2^(i-1), 2^i)
    return max != 0 && upper > max ? max : upper;
  }
  return max;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  snap.buckets.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

HistogramSnapshot HistogramSnapshot::operator-(const HistogramSnapshot& base) const {
  HistogramSnapshot out;
  out.count = count - base.count;
  out.sum = sum - base.sum;
  out.max = max;  // max is not subtractive; keep the later capture's max
  out.buckets.resize(buckets.size());
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t b = i < base.buckets.size() ? base.buckets[i] : 0;
    out.buckets[i] = buckets[i] - b;
  }
  return out;
}

MetricsSnapshot MetricsSnapshot::operator-(const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  for (const auto& [name, v] : counters) {
    auto it = base.counters.find(name);
    out.counters[name] = v - (it == base.counters.end() ? 0 : it->second);
  }
  for (const auto& [name, v] : gauges) {
    auto it = base.gauges.find(name);
    out.gauges[name] = v - (it == base.gauges.end() ? 0 : it->second);
  }
  for (const auto& [name, v] : histograms) {
    auto it = base.histograms.find(name);
    out.histograms[name] =
        it == base.histograms.end() ? v : v - it->second;
  }
  for (const auto& [name, v] : views) {
    auto it = base.views.find(name);
    out.views[name] = v - (it == base.views.end() ? 0 : it->second);
  }
  return out;
}

std::string MetricsRegistry::Key(const char* name, std::string_view label) {
  std::string key(name);
  if (!label.empty()) {
    key.push_back('{');
    key.append(label);
    key.push_back('}');
  }
  return key;
}

Counter* MetricsRegistry::counter(const char* name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[Key(name, label)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const char* name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[Key(name, label)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const char* name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[Key(name, label)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::RegisterView(const char* name, ViewFn fn,
                                   std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  views_[Key(name, label)] = std::move(fn);
}

void MetricsRegistry::UnregisterView(const char* name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  views_.erase(Key(name, label));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  // Copy the view callbacks out and evaluate them unlocked: a view may call
  // into an object (KvStore, scheduler) whose lock order must not nest under
  // the registry mutex.
  std::vector<std::pair<std::string, ViewFn>> view_fns;
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
    for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
    for (const auto& [name, h] : histograms_) snap.histograms[name] = h->Snapshot();
    view_fns.reserve(views_.size());
    for (const auto& [name, fn] : views_) view_fns.emplace_back(name, fn);
  }
  for (const auto& [name, fn] : view_fns) snap.views[name] = fn();
  return snap;
}

size_t MetricsRegistry::RotateWindows(uint64_t now_us) const {
  // Collect the stable pointers under the lock, rotate outside it: rotation
  // takes each histogram's own rotate_mu_, which must not nest under mu_
  // (same discipline as view evaluation in Snapshot()).
  std::vector<Histogram*> hists;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hists.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) hists.push_back(h.get());
  }
  size_t rotated = 0;
  for (Histogram* h : hists) {
    if (h->MaybeRotate(now_us)) ++rotated;
  }
  return rotated;
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::WindowSnapshots(
    uint64_t window_us, uint64_t now_us) const {
  std::vector<std::pair<std::string, Histogram*>> hists;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hists.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) hists.emplace_back(name, h.get());
  }
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : hists) {
    out[name] = h->WindowSnapshot(window_us, now_us);
  }
  return out;
}

Histogram* MetricsRegistry::FindHistogram(const char* name,
                                          std::string_view label) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(Key(name, label));
  return it == histograms_.end() ? nullptr : it->second.get();
}

namespace {
bool InFamily(const std::string& key, std::string_view name) {
  if (key == name) return true;
  return key.size() > name.size() + 1 && key.compare(0, name.size(), name) == 0 &&
         key[name.size()] == '{';
}
}  // namespace

uint64_t MetricsRegistry::SumCounterFamily(const char* name) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t sum = 0;
  // Maps are name-ordered: jump to the family's first key and stop past it.
  for (auto it = counters_.lower_bound(name); it != counters_.end(); ++it) {
    if (!InFamily(it->first, name)) break;
    sum += it->second->value();
  }
  return sum;
}

double MetricsRegistry::MaxViewFamily(const char* name) const {
  std::vector<ViewFn> fns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = views_.lower_bound(name); it != views_.end(); ++it) {
      if (!InFamily(it->first, name)) break;
      fns.push_back(it->second);
    }
  }
  double max_value = 0;
  for (const ViewFn& fn : fns) max_value = std::max(max_value, fn());
  return max_value;
}

std::string RenderMetricsText(const MetricsSnapshot& snap) {
  std::ostringstream out;
  for (const auto& [name, v] : snap.counters) out << name << " " << v << "\n";
  for (const auto& [name, v] : snap.gauges) out << name << " " << v << "\n";
  for (const auto& [name, h] : snap.histograms) {
    out << name << " count=" << h.count << " mean=" << h.Mean()
        << " max=" << h.max << "\n";
  }
  for (const auto& [name, v] : snap.views) out << name << " " << v << "\n";
  return out.str();
}

std::string MetricsRegistry::RenderText() const { return RenderMetricsText(Snapshot()); }

std::string RenderMetricsJson(const MetricsSnapshot& snap) {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out << ",";
    first = false;
    AppendJsonString(&out, name);
    out << ":" << v;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out << ",";
    first = false;
    AppendJsonString(&out, name);
    out << ":" << v;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out << ",";
    first = false;
    AppendJsonString(&out, name);
    out << ":{\"count\":" << h.count << ",\"sum\":" << h.sum
        << ",\"max\":" << h.max << ",\"mean\":" << h.Mean() << "}";
  }
  out << "},\"views\":{";
  first = true;
  for (const auto& [name, v] : snap.views) {
    if (!first) out << ",";
    first = false;
    AppendJsonString(&out, name);
    out << ":" << v;
  }
  out << "}}";
  return out.str();
}

std::string MetricsRegistry::RenderJson() const { return RenderMetricsJson(Snapshot()); }

}  // namespace dtl::obs
