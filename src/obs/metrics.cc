#include "obs/metrics.h"

#include <bit>
#include <sstream>

namespace dtl::obs {

namespace {

// Bucket index for a value: 0 holds {0}, bucket i holds [2^(i-1), 2^i).
size_t BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  const size_t idx = static_cast<size_t>(std::bit_width(value));
  return idx < Histogram::kNumBuckets ? idx : Histogram::kNumBuckets - 1;
}

void AppendJsonString(std::ostringstream* out, std::string_view s) {
  *out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') *out << '\\';
    *out << c;
  }
  *out << '"';
}

}  // namespace

void Histogram::Observe(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < value &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  snap.buckets.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

HistogramSnapshot HistogramSnapshot::operator-(const HistogramSnapshot& base) const {
  HistogramSnapshot out;
  out.count = count - base.count;
  out.sum = sum - base.sum;
  out.max = max;  // max is not subtractive; keep the later capture's max
  out.buckets.resize(buckets.size());
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t b = i < base.buckets.size() ? base.buckets[i] : 0;
    out.buckets[i] = buckets[i] - b;
  }
  return out;
}

MetricsSnapshot MetricsSnapshot::operator-(const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  for (const auto& [name, v] : counters) {
    auto it = base.counters.find(name);
    out.counters[name] = v - (it == base.counters.end() ? 0 : it->second);
  }
  for (const auto& [name, v] : gauges) {
    auto it = base.gauges.find(name);
    out.gauges[name] = v - (it == base.gauges.end() ? 0 : it->second);
  }
  for (const auto& [name, v] : histograms) {
    auto it = base.histograms.find(name);
    out.histograms[name] =
        it == base.histograms.end() ? v : v - it->second;
  }
  for (const auto& [name, v] : views) {
    auto it = base.views.find(name);
    out.views[name] = v - (it == base.views.end() ? 0 : it->second);
  }
  return out;
}

std::string MetricsRegistry::Key(const char* name, std::string_view label) {
  std::string key(name);
  if (!label.empty()) {
    key.push_back('{');
    key.append(label);
    key.push_back('}');
  }
  return key;
}

Counter* MetricsRegistry::counter(const char* name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[Key(name, label)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const char* name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[Key(name, label)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const char* name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[Key(name, label)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::RegisterView(const char* name, ViewFn fn,
                                   std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  views_[Key(name, label)] = std::move(fn);
}

void MetricsRegistry::UnregisterView(const char* name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  views_.erase(Key(name, label));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  // Copy the view callbacks out and evaluate them unlocked: a view may call
  // into an object (KvStore, scheduler) whose lock order must not nest under
  // the registry mutex.
  std::vector<std::pair<std::string, ViewFn>> view_fns;
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
    for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
    for (const auto& [name, h] : histograms_) snap.histograms[name] = h->Snapshot();
    view_fns.reserve(views_.size());
    for (const auto& [name, fn] : views_) view_fns.emplace_back(name, fn);
  }
  for (const auto& [name, fn] : view_fns) snap.views[name] = fn();
  return snap;
}

std::string MetricsRegistry::RenderText() const {
  const MetricsSnapshot snap = Snapshot();
  std::ostringstream out;
  for (const auto& [name, v] : snap.counters) out << name << " " << v << "\n";
  for (const auto& [name, v] : snap.gauges) out << name << " " << v << "\n";
  for (const auto& [name, h] : snap.histograms) {
    out << name << " count=" << h.count << " mean=" << h.Mean()
        << " max=" << h.max << "\n";
  }
  for (const auto& [name, v] : snap.views) out << name << " " << v << "\n";
  return out.str();
}

std::string MetricsRegistry::RenderJson() const {
  const MetricsSnapshot snap = Snapshot();
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out << ",";
    first = false;
    AppendJsonString(&out, name);
    out << ":" << v;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out << ",";
    first = false;
    AppendJsonString(&out, name);
    out << ":" << v;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out << ",";
    first = false;
    AppendJsonString(&out, name);
    out << ":{\"count\":" << h.count << ",\"sum\":" << h.sum
        << ",\"max\":" << h.max << ",\"mean\":" << h.Mean() << "}";
  }
  out << "},\"views\":{";
  first = true;
  for (const auto& [name, v] : snap.views) {
    if (!first) out << ",";
    first = false;
    AppendJsonString(&out, name);
    out << ":" << v;
  }
  out << "}}";
  return out.str();
}

}  // namespace dtl::obs
