#include "common/background_scheduler.h"

#include <vector>

#include "common/stopwatch.h"

namespace dtl {

void SteadySchedulerClock::WaitForRound(std::condition_variable& cv,
                                        std::unique_lock<std::mutex>& lock,
                                        std::chrono::milliseconds poll_interval,
                                        const std::function<bool()>& wake) {
  cv.wait_for(lock, poll_interval, wake);
}

void ManualSchedulerClock::WaitForRound(std::condition_variable& cv,
                                        std::unique_lock<std::mutex>& lock,
                                        std::chrono::milliseconds /*poll_interval*/,
                                        const std::function<bool()>& wake) {
  cv.wait(lock, wake);
}

BackgroundScheduler::BackgroundScheduler(std::chrono::milliseconds poll_interval,
                                         std::unique_ptr<SchedulerClock> clock)
    : poll_interval_(poll_interval), clock_(std::move(clock)) {
  if (!clock_) clock_ = std::make_unique<SteadySchedulerClock>();
  thread_ = std::thread([this] { Loop(); });
}

BackgroundScheduler::~BackgroundScheduler() { Shutdown(); }

uint64_t BackgroundScheduler::Register(std::string name, PollFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_id_++;
  auto job = std::make_shared<Job>();
  job->name = std::move(name);
  job->fn = std::move(fn);
  jobs_.emplace(id, std::move(job));
  wake_requested_ = true;  // poll the new job promptly
  cv_.notify_one();
  return id;
}

void BackgroundScheduler::Unregister(uint64_t id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  std::shared_ptr<Job> job = it->second;
  job->removed = true;  // the daemon skips removed jobs even mid-round
  jobs_.erase(it);
  // The fn may be capturing our caller's object; wait out an in-flight poll.
  done_cv_.wait(lock, [&job] { return !job->running; });
}

void BackgroundScheduler::Wake() {
  std::lock_guard<std::mutex> lock(mu_);
  wake_requested_ = true;
  cv_.notify_one();
}

void BackgroundScheduler::Quiesce() {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) return;
  // A round already in flight may have polled some jobs before our caller's
  // writes landed; require one that starts from scratch.
  const uint64_t target = rounds_completed_ + (in_round_ ? 2 : 1);
  wake_requested_ = true;
  cv_.notify_one();
  done_cv_.wait(lock, [this, target] { return stop_ || rounds_completed_ >= target; });
}

void BackgroundScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
    cv_.notify_all();
    done_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

uint64_t BackgroundScheduler::rounds_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rounds_completed_;
}

size_t BackgroundScheduler::num_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

double BackgroundScheduler::last_round_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_round_seconds_;
}

void BackgroundScheduler::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    clock_->WaitForRound(cv_, lock, poll_interval_,
                         [this] { return stop_ || wake_requested_; });
    if (stop_) break;
    wake_requested_ = false;
    ++rounds_started_;
    in_round_ = true;
    Stopwatch round_watch;
    std::vector<std::shared_ptr<Job>> round;
    round.reserve(jobs_.size());
    for (auto& [id, job] : jobs_) round.push_back(job);
    for (auto& job : round) {
      if (job->removed) continue;
      job->running = true;
      lock.unlock();
      job->fn();  // user code runs without the scheduler lock
      lock.lock();
      job->running = false;
      done_cv_.notify_all();
      if (stop_) break;
    }
    in_round_ = false;
    ++rounds_completed_;
    last_round_seconds_ = round_watch.ElapsedSeconds();
    done_cv_.notify_all();
  }
  // Flush any waiters that raced Shutdown.
  done_cv_.notify_all();
}

}  // namespace dtl
