// Background maintenance scheduler: one daemon thread that periodically
// polls registered jobs (KV size-tiered compaction, DualTable compaction
// debt). Stands in for HBase's background compactor threads and Hive's
// metastore housekeeping — write-path latency debt stays off the foreground
// path, and compaction debt can't accumulate unobserved on write-only
// workloads.
//
// Contracts:
//   - Poll functions run OUTSIDE the scheduler lock, one at a time (the
//     scheduler is single-threaded), so jobs may take their own locks and
//     block without stalling registration.
//   - Unregister() blocks until the job's poll fn is not running and will
//     never run again — safe to call from a destructor whose object the fn
//     captures.
//   - Quiesce() blocks until one full round that STARTED after the call
//     completes, so every job observes state written before Quiesce().
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace dtl {

/// How the scheduler daemon waits between rounds. The default steady clock
/// sleeps on the condition variable with a timeout (rounds fire on a wall
/// cadence OR an explicit Wake); the manual clock waits with NO timeout, so
/// rounds fire only on Wake/Quiesce/Shutdown — deterministic tests drive the
/// scheduler tick-by-tick without ever sleeping.
class SchedulerClock {
 public:
  virtual ~SchedulerClock() = default;
  /// Blocks the daemon until `wake()` becomes true, or — for real-time
  /// clocks — until `poll_interval` elapses. Called with `lock` held on the
  /// scheduler mutex guarding the state `wake` reads.
  virtual void WaitForRound(std::condition_variable& cv,
                            std::unique_lock<std::mutex>& lock,
                            std::chrono::milliseconds poll_interval,
                            const std::function<bool()>& wake) = 0;
};

/// Production behavior: timed wait, rounds fire every poll interval.
class SteadySchedulerClock final : public SchedulerClock {
 public:
  void WaitForRound(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                    std::chrono::milliseconds poll_interval,
                    const std::function<bool()>& wake) override;
};

/// Test behavior: untimed wait; only Wake/Quiesce/Shutdown start a round.
class ManualSchedulerClock final : public SchedulerClock {
 public:
  void WaitForRound(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                    std::chrono::milliseconds poll_interval,
                    const std::function<bool()>& wake) override;
};

class BackgroundScheduler {
 public:
  /// A poll fn checks its job's trigger condition and does the work inline;
  /// it must swallow (and decide how to surface) its own errors.
  using PollFn = std::function<void()>;

  explicit BackgroundScheduler(
      std::chrono::milliseconds poll_interval = std::chrono::milliseconds(20),
      std::unique_ptr<SchedulerClock> clock = nullptr);
  ~BackgroundScheduler();

  BackgroundScheduler(const BackgroundScheduler&) = delete;
  BackgroundScheduler& operator=(const BackgroundScheduler&) = delete;

  /// Registers a job; the name is for diagnostics only. Returns a handle for
  /// Unregister.
  uint64_t Register(std::string name, PollFn fn);

  /// Removes the job, blocking until its poll fn is guaranteed not running.
  void Unregister(uint64_t id);

  /// Nudges the scheduler to start a round now instead of waiting out the
  /// poll interval.
  void Wake();

  /// Blocks until a full round that started after this call has completed
  /// (no-op after Shutdown).
  void Quiesce();

  /// Stops the daemon thread; registered jobs stop being polled. Idempotent.
  /// Called by the destructor.
  void Shutdown();

  uint64_t rounds_completed() const;

  /// Number of currently registered jobs (observability gauge).
  size_t num_jobs() const;

  /// Wall seconds the most recently completed round took; 0 before the
  /// first round finishes (observability gauge).
  double last_round_seconds() const;

 private:
  struct Job {
    std::string name;
    PollFn fn;
    bool running = false;
    bool removed = false;
  };

  void Loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;        // wakes the daemon (Wake/Shutdown/new job)
  std::condition_variable done_cv_;   // wakes Unregister/Quiesce waiters
  std::map<uint64_t, std::shared_ptr<Job>> jobs_;
  uint64_t next_id_ = 1;
  uint64_t rounds_started_ = 0;
  uint64_t rounds_completed_ = 0;
  double last_round_seconds_ = 0;
  bool in_round_ = false;
  bool wake_requested_ = false;
  bool stop_ = false;
  std::chrono::milliseconds poll_interval_;
  std::unique_ptr<SchedulerClock> clock_;
  std::thread thread_;
};

}  // namespace dtl
