// Relational schema and row types shared across the storage formats, the
// query engine, and DualTable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace dtl {

/// One column: a name plus a declared type.
struct Field {
  std::string name;
  DataType type = DataType::kNull;

  bool operator==(const Field&) const = default;
};

/// Ordered list of fields. Column ordinals are stable and serve as HBase
/// column qualifiers in the attached table.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Ordinal of the named column, or nullopt. Matching is case-insensitive,
  /// as in HiveQL.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// Schema containing only the given ordinals, in the given order.
  Schema Project(const std::vector<size_t>& ordinals) const;

  /// "name type, name type, ..." rendering for diagnostics and DDL echo.
  std::string ToString() const;

  /// Compact serialization for file footers and the metadata table.
  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, Schema* out);

  bool operator==(const Schema&) const = default;

 private:
  std::vector<Field> fields_;
};

/// One tuple of values, positionally aligned with a Schema.
using Row = std::vector<Value>;

/// Serializes a full row (used by the shuffle and the text-format fallback).
void EncodeRow(const Row& row, std::string* dst);
Status DecodeRow(Slice* input, Row* out);

/// Sum of per-cell ByteSize; approximates the row's storage footprint.
size_t RowByteSize(const Row& row);

/// Renders a row as a tab-separated line for examples and debugging.
std::string RowToString(const Row& row);

}  // namespace dtl
