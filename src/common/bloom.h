// Bloom filter used by SSTables to skip blocks that cannot contain a key,
// mirroring HBase's per-HFile bloom filters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"

namespace dtl {

/// Standard double-hashed Bloom filter over byte-string keys.
class BloomFilter {
 public:
  /// Builds a filter sized for `expected_keys` at `bits_per_key` (default 10
  /// gives ~1% false positives).
  explicit BloomFilter(size_t expected_keys, int bits_per_key = 10);

  /// Reconstructs a filter from a serialized representation.
  static BloomFilter Deserialize(const Slice& data);

  void Add(const Slice& key);

  /// False means definitely absent; true means possibly present.
  bool MayContain(const Slice& key) const;

  /// Serializes to [num_probes:1][bits...]; append-safe for file footers.
  std::string Serialize() const;

  size_t bit_count() const { return bits_.size() * 8; }

 private:
  BloomFilter() = default;

  static uint64_t Hash(const Slice& key, uint64_t seed);

  std::vector<uint8_t> bits_;
  int num_probes_ = 1;
};

}  // namespace dtl
