#include "common/coding.h"

#include <array>

namespace dtl {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  dst->append(buf, 8);
}

uint32_t DecodeFixed32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) | (static_cast<uint32_t>(u[3]) << 24);
}

uint64_t DecodeFixed64(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | u[i];
  return v;
}

void PutVarint32(std::string* dst, uint32_t v) { PutVarint64(dst, v); }

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

Status GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (input->empty()) return Status::Corruption("truncated varint");
    auto byte = static_cast<unsigned char>((*input)[0]);
    input->RemovePrefix(1);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return Status::OK();
    }
  }
  return Status::Corruption("varint too long");
}

Status GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v64 = 0;
  DTL_RETURN_NOT_OK(GetVarint64(input, &v64));
  if (v64 > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *value = static_cast<uint32_t>(v64);
  return Status::OK();
}

void PutLengthPrefixed(std::string* dst, const Slice& value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

Status GetLengthPrefixed(Slice* input, Slice* value) {
  uint64_t len = 0;
  DTL_RETURN_NOT_OK(GetVarint64(input, &len));
  if (input->size() < len) return Status::Corruption("truncated length-prefixed string");
  *value = Slice(input->data(), len);
  input->RemovePrefix(len);
  return Status::OK();
}

void PutBigEndian64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * (7 - i))) & 0xff);
  dst->append(buf, 8);
}

uint64_t DecodeBigEndian64(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | u[i];
  return v;
}

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  // CRC-32C (Castagnoli), reflected polynomial 0x82F63B78.
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const char* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace dtl
