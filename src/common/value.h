// Dynamically typed cell values and column types for the relational layer.
// These mirror the Hive primitive types used by the paper's workloads:
// BIGINT, DOUBLE, STRING, BOOLEAN, and DATE (days since epoch).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/slice.h"
#include "common/status.h"

namespace dtl {

/// Column data types supported by the engine.
enum class DataType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kBool = 4,
  kDate = 5,  // days since 1970-01-01, stored as int32 range in an int64
};

const char* DataTypeName(DataType t);

/// Parses a type name as written in DDL ("bigint", "double", "string",
/// "boolean", "date"; Hive aliases "int" and "varchar" are accepted).
Result<DataType> ParseDataType(const std::string& name);

/// One dynamically typed cell. Null is represented by the monostate
/// alternative regardless of the column's declared type.
class Value {
 public:
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Rep(std::in_place_index<1>, v)); }
  static Value Double(double v) { return Value(Rep(std::in_place_index<2>, v)); }
  static Value String(std::string v) {
    return Value(Rep(std::in_place_index<3>, std::move(v)));
  }
  static Value Bool(bool v) { return Value(Rep(std::in_place_index<4>, v)); }
  /// Dates share the int64 representation; the schema supplies the type.
  static Value Date(int64_t days) { return Int64(days); }

  bool is_null() const { return rep_.index() == 0; }
  bool is_int64() const { return rep_.index() == 1; }
  bool is_double() const { return rep_.index() == 2; }
  bool is_string() const { return rep_.index() == 3; }
  bool is_bool() const { return rep_.index() == 4; }

  int64_t AsInt64() const { return std::get<1>(rep_); }
  double AsDouble() const { return std::get<2>(rep_); }
  const std::string& AsString() const { return std::get<3>(rep_); }
  bool AsBool() const { return std::get<4>(rep_); }

  /// Numeric view: int64 and double coerce; everything else is an error.
  Result<double> ToNumeric() const;

  /// Total order across values of the same kind; nulls sort first; numeric
  /// kinds compare numerically across int64/double.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Human-readable rendering ("NULL", "42", "3.14", "abc", "true").
  std::string ToString() const;

  /// Compact binary serialization: [tag:1][payload]; strings are
  /// length-prefixed. Used by the attached table and the shuffle layer.
  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, Value* out);

  /// Approximate in-memory size in bytes, for cost accounting.
  size_t ByteSize() const;

  size_t HashCode() const;

 private:
  using Rep = std::variant<std::monostate, int64_t, double, std::string, bool>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

}  // namespace dtl
