// Deterministic pseudo-random generation (xorshift128+). All workload
// generators seed from fixed constants so every bench and test is reproducible
// bit-for-bit across runs and machines.
#pragma once

#include <cstdint>
#include <string>

namespace dtl {

/// Small fast deterministic PRNG (xorshift128+). Not cryptographic.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 to spread the seed across both words.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
    if (s0_ == 0 && s1_ == 0) s1_ = 0x9E3779B97F4A7C15ull;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Random lowercase alphanumeric string of the given length.
  std::string NextString(size_t len) {
    static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz0123456789";
    std::string out;
    out.reserve(len);
    for (size_t i = 0; i < len; ++i) out.push_back(kAlpha[Uniform(36)]);
    return out;
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace dtl
