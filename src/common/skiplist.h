// In-memory ordered map used as the KV store's memtable, mirroring the
// skip-list memtables of HBase/LevelDB/RocksDB.
//
// Concurrency contract (LevelDB-style):
//   * one writer at a time (callers serialize Insert externally — the KV
//     store does so with its table mutex);
//   * any number of concurrent readers (Find/Contains/Iterator) WITHOUT
//     locking: links are std::atomic<Node*>, published with release stores
//     and traversed with acquire loads, and nodes are never removed or
//     resized until the whole list is destroyed;
//   * Insert over an EXISTING key overwrites the value in place, which is
//     NOT safe concurrently with readers. The memtable never hits this case
//     (cell keys carry unique timestamps); other users must quiesce readers
//     before overwriting.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <string>

#include "common/random.h"

namespace dtl {

/// Ordered map from Key to Value with probabilistic O(log n) operations.
/// Comparator must define a strict weak ordering via operator()(a, b) < 0/0/>0.
template <typename Key, typename Value, typename Comparator = std::compare_three_way>
class SkipList {
 public:
  static constexpr int kMaxHeight = 12;

  explicit SkipList(Comparator cmp = Comparator())
      : cmp_(std::move(cmp)), rng_(0xDEADBEEF), head_(NewNode(Key(), Value(), kMaxHeight)) {}

  ~SkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->Next(0);
      DeleteNode(n);
      n = next;
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts or overwrites the value for key. Returns true when the key is
  /// new. Single writer only; see the concurrency contract above.
  bool Insert(const Key& key, Value value) {
    Node* prev[kMaxHeight];
    Node* found = FindGreaterOrEqual(key, prev);
    if (found != nullptr && Equal(found->key, key)) {
      found->value = std::move(value);
      return false;
    }
    int height = RandomHeight();
    if (height > height_.load(std::memory_order_relaxed)) {
      for (int i = height_.load(std::memory_order_relaxed); i < height; ++i) {
        prev[i] = head_;
      }
      // Readers that observe the new height before the links below exist
      // see null next pointers at the new levels and simply drop a level.
      height_.store(height, std::memory_order_relaxed);
    }
    Node* node = NewNode(key, std::move(value), height);
    for (int i = 0; i < height; ++i) {
      // The node is linked bottom-up; its own next pointer is set before the
      // release store that publishes it, so a reader that sees the node sees
      // fully initialized links.
      node->next[i].store(prev[i]->Next(i), std::memory_order_relaxed);
      prev[i]->next[i].store(node, std::memory_order_release);
    }
    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Returns a pointer to the value for key, or nullptr when absent.
  const Value* Find(const Key& key) const {
    Node* prev[kMaxHeight];
    Node* n = FindGreaterOrEqual(key, prev);
    if (n != nullptr && Equal(n->key, key)) return &n->value;
    return nullptr;
  }

  Value* FindMutable(const Key& key) {
    return const_cast<Value*>(static_cast<const SkipList*>(this)->Find(key));
  }

  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  size_t size() const { return size_.load(std::memory_order_relaxed); }
  bool empty() const { return size() == 0; }

  /// Forward iterator over entries in key order. Safe to use concurrently
  /// with the single writer: it only ever observes fully published nodes.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    void SeekToFirst() { node_ = list_->head_->Next(0); }
    void Seek(const Key& target) {
      Node* prev[kMaxHeight];
      node_ = list_->FindGreaterOrEqual(target, prev);
    }
    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    const Value& value() const {
      assert(Valid());
      return node_->value;
    }

   private:
    const SkipList* list_;
    typename SkipList::Node* node_;
  };

 private:
  struct Node {
    Key key;
    Value value;
    std::atomic<Node*> next[1];  // over-allocated to `height` entries

    Node* Next(int level) const { return next[level].load(std::memory_order_acquire); }
  };

  static Node* NewNode(const Key& key, Value value, int height) {
    void* mem = ::operator new(sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
    Node* n = new (mem) Node{key, std::move(value), {nullptr}};
    for (int i = 1; i < height; ++i) {
      new (&n->next[i]) std::atomic<Node*>(nullptr);
    }
    return n;
  }

  /// Nodes come from raw ::operator new (over-allocated next[]), so a plain
  /// delete-expression would mismatch; destroy and deallocate to match.
  static void DeleteNode(Node* n) {
    n->~Node();
    ::operator delete(n);
  }

  int RandomHeight() {
    int h = 1;
    while (h < kMaxHeight && rng_.Uniform(4) == 0) ++h;
    return h;
  }

  int Compare(const Key& a, const Key& b) const {
    auto c = cmp_(a, b);
    if constexpr (std::is_same_v<decltype(c), int>) {
      return c;
    } else {
      if (c < 0) return -1;
      if (c > 0) return 1;
      return 0;
    }
  }

  bool Equal(const Key& a, const Key& b) const { return Compare(a, b) == 0; }

  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = height_.load(std::memory_order_relaxed) - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr && Compare(next->key, key) < 0) {
        x = next;
      } else {
        prev[level] = x;
        if (level == 0) return next;
        --level;
      }
    }
  }

  Comparator cmp_;
  Random rng_;
  Node* head_;
  std::atomic<int> height_{1};
  std::atomic<size_t> size_{0};
};

}  // namespace dtl
