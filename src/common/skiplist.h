// In-memory ordered map used as the KV store's memtable, mirroring the
// skip-list memtables of HBase/LevelDB/RocksDB. Single-writer, multi-reader
// is sufficient here because the KV store serializes writes per table.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>

#include "common/random.h"

namespace dtl {

/// Ordered map from Key to Value with probabilistic O(log n) operations.
/// Comparator must define a strict weak ordering via operator()(a, b) < 0/0/>0.
template <typename Key, typename Value, typename Comparator = std::compare_three_way>
class SkipList {
 public:
  static constexpr int kMaxHeight = 12;

  explicit SkipList(Comparator cmp = Comparator())
      : cmp_(std::move(cmp)), rng_(0xDEADBEEF), head_(NewNode(Key(), Value(), kMaxHeight)) {}

  ~SkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0];
      DeleteNode(n);
      n = next;
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts or overwrites the value for key. Returns true when the key is new.
  bool Insert(const Key& key, Value value) {
    Node* prev[kMaxHeight];
    Node* found = FindGreaterOrEqual(key, prev);
    if (found != nullptr && Equal(found->key, key)) {
      found->value = std::move(value);
      return false;
    }
    int height = RandomHeight();
    if (height > height_) {
      for (int i = height_; i < height; ++i) prev[i] = head_;
      height_ = height;
    }
    Node* node = NewNode(key, std::move(value), height);
    for (int i = 0; i < height; ++i) {
      node->next[i] = prev[i]->next[i];
      prev[i]->next[i] = node;
    }
    ++size_;
    return true;
  }

  /// Returns a pointer to the value for key, or nullptr when absent.
  const Value* Find(const Key& key) const {
    Node* prev[kMaxHeight];
    Node* n = FindGreaterOrEqual(key, prev);
    if (n != nullptr && Equal(n->key, key)) return &n->value;
    return nullptr;
  }

  Value* FindMutable(const Key& key) {
    return const_cast<Value*>(static_cast<const SkipList*>(this)->Find(key));
  }

  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Forward iterator over entries in key order.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    void SeekToFirst() { node_ = list_->head_->next[0]; }
    void Seek(const Key& target) {
      Node* prev[kMaxHeight];
      node_ = list_->FindGreaterOrEqual(target, prev);
    }
    void Next() {
      assert(Valid());
      node_ = node_->next[0];
    }
    const Key& key() const {
      assert(Valid());
      return node_->key;
    }
    const Value& value() const {
      assert(Valid());
      return node_->value;
    }

   private:
    const SkipList* list_;
    typename SkipList::Node* node_;
  };

 private:
  struct Node {
    Key key;
    Value value;
    Node* next[1];  // over-allocated to `height` entries
  };

  static Node* NewNode(const Key& key, Value value, int height) {
    void* mem = ::operator new(sizeof(Node) + sizeof(Node*) * (height - 1));
    Node* n = new (mem) Node{key, std::move(value), {nullptr}};
    for (int i = 0; i < height; ++i) n->next[i] = nullptr;
    return n;
  }

  /// Nodes come from raw ::operator new (over-allocated next[]), so a plain
  /// delete-expression would mismatch; destroy and deallocate to match.
  static void DeleteNode(Node* n) {
    n->~Node();
    ::operator delete(n);
  }

  int RandomHeight() {
    int h = 1;
    while (h < kMaxHeight && rng_.Uniform(4) == 0) ++h;
    return h;
  }

  int Compare(const Key& a, const Key& b) const {
    auto c = cmp_(a, b);
    if constexpr (std::is_same_v<decltype(c), int>) {
      return c;
    } else {
      if (c < 0) return -1;
      if (c > 0) return 1;
      return 0;
    }
  }

  bool Equal(const Key& a, const Key& b) const { return Compare(a, b) == 0; }

  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = height_ - 1;
    while (true) {
      Node* next = x->next[level];
      if (next != nullptr && Compare(next->key, key) < 0) {
        x = next;
      } else {
        prev[level] = x;
        if (level == 0) return next;
        --level;
      }
    }
  }

  Comparator cmp_;
  Random rng_;
  Node* head_;
  int height_ = 1;
  size_t size_ = 0;
};

}  // namespace dtl
