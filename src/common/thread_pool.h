// Fixed-size worker pool used by the MapReduce-like executor to run splits
// in parallel, standing in for a cluster's task slots.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace dtl {

/// Simple FIFO thread pool. Tasks may not block on other tasks submitted to
/// the same pool (no work stealing), which the executor respects by
/// submitting only leaf-level split work.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future resolves when it completes.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and waits for all of them.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// A batch of Status-returning tasks fanned out on a ThreadPool. The first
/// task to fail cancels the group: tasks not yet started become no-ops, and
/// long-running tasks may poll cancelled() to bail early. Wait() is the
/// single barrier — it blocks until every spawned task has finished (or been
/// skipped) and returns the first error, so callers get all-or-nothing
/// semantics without juggling futures.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool);
  /// All spawned tasks must have been waited on before destruction.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues one task. Must not be called after Wait().
  void Spawn(std::function<Status()> task);

  /// Blocks until all spawned tasks are done; returns the first error (tasks
  /// skipped by cancellation count as done). Call exactly once.
  [[nodiscard]] Status Wait();

  /// Marks the group cancelled: unstarted tasks are skipped. Does not
  /// interrupt tasks already running.
  void Cancel();
  bool cancelled() const { return state_->cancelled.load(std::memory_order_acquire); }

 private:
  /// Shared with the pool-side lambdas so the group may be destroyed after
  /// Wait() even if the pool still holds (finished) task objects.
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    size_t pending = 0;
    Status first_error;
    std::atomic<bool> cancelled{false};
  };

  ThreadPool* pool_;
  std::shared_ptr<State> state_;
  bool waited_ = false;
};

}  // namespace dtl
