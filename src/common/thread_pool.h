// Fixed-size worker pool used by the MapReduce-like executor to run splits
// in parallel, standing in for a cluster's task slots.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dtl {

/// Simple FIFO thread pool. Tasks may not block on other tasks submitted to
/// the same pool (no work stealing), which the executor respects by
/// submitting only leaf-level split work.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future resolves when it completes.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and waits for all of them.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace dtl
