#include "common/status.h"

namespace dtl {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kNotSupported:
      return "not supported";
    case StatusCode::kIoError:
      return "io error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kBusy:
      return "busy";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace dtl
