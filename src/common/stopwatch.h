// Wall-clock measurement helper used by the bench harness.
#pragma once

#include <chrono>

namespace dtl {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dtl
