#include "common/value.h"

#include <cstdio>
#include <functional>

#include "common/coding.h"

namespace dtl {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "null";
    case DataType::kInt64:
      return "bigint";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kBool:
      return "boolean";
    case DataType::kDate:
      return "date";
  }
  return "unknown";
}

Result<DataType> ParseDataType(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "bigint" || lower == "int" || lower == "integer" || lower == "tinyint" ||
      lower == "smallint") {
    return DataType::kInt64;
  }
  if (lower == "double" || lower == "float" || lower == "decimal") return DataType::kDouble;
  if (lower == "string" || lower == "varchar" || lower == "char") return DataType::kString;
  if (lower == "boolean" || lower == "bool") return DataType::kBool;
  if (lower == "date") return DataType::kDate;
  return Status::InvalidArgument("unknown type name: " + name);
}

Result<double> Value::ToNumeric() const {
  if (is_int64()) return static_cast<double>(AsInt64());
  if (is_double()) return AsDouble();
  if (is_bool()) return AsBool() ? 1.0 : 0.0;
  return Status::InvalidArgument("value is not numeric: " + ToString());
}

int Value::Compare(const Value& other) const {
  // Nulls first.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  // Cross-numeric comparison.
  const bool a_num = is_int64() || is_double();
  const bool b_num = other.is_int64() || other.is_double();
  if (a_num && b_num) {
    if (is_int64() && other.is_int64()) {
      int64_t a = AsInt64(), b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = is_int64() ? static_cast<double>(AsInt64()) : AsDouble();
    double b = other.is_int64() ? static_cast<double>(other.AsInt64()) : other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  // Same-kind comparisons.
  if (rep_.index() != other.rep_.index()) {
    return rep_.index() < other.rep_.index() ? -1 : 1;
  }
  if (is_string()) return Slice(AsString()).Compare(Slice(other.AsString()));
  if (is_bool()) return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
  return 0;
}

std::string Value::ToString() const {
  switch (rep_.index()) {
    case 0:
      return "NULL";
    case 1:
      return std::to_string(AsInt64());
    case 2: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
      return buf;
    }
    case 3:
      return AsString();
    case 4:
      return AsBool() ? "true" : "false";
  }
  return "?";
}

void Value::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(rep_.index()));
  switch (rep_.index()) {
    case 0:
      break;
    case 1:
      PutVarint64(dst, ZigZagEncode(AsInt64()));
      break;
    case 2: {
      uint64_t bits;
      double d = AsDouble();
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      PutFixed64(dst, bits);
      break;
    }
    case 3:
      PutLengthPrefixed(dst, Slice(AsString()));
      break;
    case 4:
      dst->push_back(AsBool() ? 1 : 0);
      break;
  }
}

Status Value::DecodeFrom(Slice* input, Value* out) {
  if (input->empty()) return Status::Corruption("truncated value: missing tag");
  auto tag = static_cast<unsigned char>((*input)[0]);
  input->RemovePrefix(1);
  switch (tag) {
    case 0:
      *out = Value::Null();
      return Status::OK();
    case 1: {
      uint64_t zz;
      DTL_RETURN_NOT_OK(GetVarint64(input, &zz));
      *out = Value::Int64(ZigZagDecode(zz));
      return Status::OK();
    }
    case 2: {
      if (input->size() < 8) return Status::Corruption("truncated double value");
      uint64_t bits = DecodeFixed64(input->data());
      input->RemovePrefix(8);
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value::Double(d);
      return Status::OK();
    }
    case 3: {
      Slice s;
      DTL_RETURN_NOT_OK(GetLengthPrefixed(input, &s));
      *out = Value::String(s.ToString());
      return Status::OK();
    }
    case 4: {
      if (input->empty()) return Status::Corruption("truncated bool value");
      *out = Value::Bool((*input)[0] != 0);
      input->RemovePrefix(1);
      return Status::OK();
    }
    default:
      return Status::Corruption("bad value tag " + std::to_string(tag));
  }
}

size_t Value::ByteSize() const {
  switch (rep_.index()) {
    case 0:
      return 1;
    case 1:
    case 2:
      return 8;
    case 3:
      return AsString().size() + 4;
    case 4:
      return 1;
  }
  return 1;
}

size_t Value::HashCode() const {
  switch (rep_.index()) {
    case 0:
      return 0x9E3779B9u;
    case 1:
      return std::hash<int64_t>{}(AsInt64());
    case 2: {
      // Hash ints and equal-valued doubles identically so mixed-type join
      // keys group correctly.
      double d = AsDouble();
      int64_t i = static_cast<int64_t>(d);
      if (static_cast<double>(i) == d) return std::hash<int64_t>{}(i);
      return std::hash<double>{}(d);
    }
    case 3:
      return std::hash<std::string>{}(AsString());
    case 4:
      return std::hash<bool>{}(AsBool());
  }
  return 0;
}

}  // namespace dtl
