#include "common/bloom.h"

#include <algorithm>
#include <cmath>

namespace dtl {

BloomFilter::BloomFilter(size_t expected_keys, int bits_per_key) {
  size_t bits = std::max<size_t>(64, expected_keys * static_cast<size_t>(bits_per_key));
  bits_.assign((bits + 7) / 8, 0);
  // k = ln(2) * bits/keys, clamped to a sane range.
  num_probes_ = static_cast<int>(bits_per_key * 0.69);
  num_probes_ = std::clamp(num_probes_, 1, 30);
}

BloomFilter BloomFilter::Deserialize(const Slice& data) {
  BloomFilter f;
  if (data.empty()) {
    f.bits_.assign(8, 0);
    f.num_probes_ = 1;
    return f;
  }
  f.num_probes_ = static_cast<unsigned char>(data[0]);
  if (f.num_probes_ < 1) f.num_probes_ = 1;
  f.bits_.assign(data.data() + 1, data.data() + data.size());
  if (f.bits_.empty()) f.bits_.assign(8, 0);
  return f;
}

uint64_t BloomFilter::Hash(const Slice& key, uint64_t seed) {
  // FNV-1a with a seed mixed in.
  uint64_t h = 1469598103934665603ull ^ (seed * 0x9E3779B97F4A7C15ull);
  for (size_t i = 0; i < key.size(); ++i) {
    h ^= static_cast<unsigned char>(key[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void BloomFilter::Add(const Slice& key) {
  const uint64_t h1 = Hash(key, 0);
  const uint64_t h2 = Hash(key, 1) | 1;  // odd so it cycles all positions
  const uint64_t nbits = bits_.size() * 8;
  for (int i = 0; i < num_probes_; ++i) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % nbits;
    bits_[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
  }
}

bool BloomFilter::MayContain(const Slice& key) const {
  const uint64_t h1 = Hash(key, 0);
  const uint64_t h2 = Hash(key, 1) | 1;
  const uint64_t nbits = bits_.size() * 8;
  for (int i = 0; i < num_probes_; ++i) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % nbits;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
  }
  return true;
}

std::string BloomFilter::Serialize() const {
  std::string out;
  out.push_back(static_cast<char>(num_probes_));
  out.append(reinterpret_cast<const char*>(bits_.data()), bits_.size());
  return out;
}

}  // namespace dtl
