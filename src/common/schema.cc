#include "common/schema.h"

#include <cctype>

#include "common/coding.h"

namespace dtl {

namespace {
bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}
}  // namespace

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return i;
  }
  return std::nullopt;
}

Schema Schema::Project(const std::vector<size_t>& ordinals) const {
  std::vector<Field> out;
  out.reserve(ordinals.size());
  for (size_t ord : ordinals) out.push_back(fields_[ord]);
  return Schema(std::move(out));
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += " ";
    out += DataTypeName(fields_[i].type);
  }
  return out;
}

void Schema::EncodeTo(std::string* dst) const {
  PutVarint64(dst, fields_.size());
  for (const Field& f : fields_) {
    PutLengthPrefixed(dst, Slice(f.name));
    dst->push_back(static_cast<char>(f.type));
  }
}

Status Schema::DecodeFrom(Slice* input, Schema* out) {
  uint64_t n = 0;
  DTL_RETURN_NOT_OK(GetVarint64(input, &n));
  std::vector<Field> fields;
  fields.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Slice name;
    DTL_RETURN_NOT_OK(GetLengthPrefixed(input, &name));
    if (input->empty()) return Status::Corruption("truncated schema field type");
    auto type = static_cast<DataType>((*input)[0]);
    input->RemovePrefix(1);
    fields.push_back(Field{name.ToString(), type});
  }
  *out = Schema(std::move(fields));
  return Status::OK();
}

void EncodeRow(const Row& row, std::string* dst) {
  PutVarint64(dst, row.size());
  for (const Value& v : row) v.EncodeTo(dst);
}

Status DecodeRow(Slice* input, Row* out) {
  uint64_t n = 0;
  DTL_RETURN_NOT_OK(GetVarint64(input, &n));
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Value v;
    DTL_RETURN_NOT_OK(Value::DecodeFrom(input, &v));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

size_t RowByteSize(const Row& row) {
  size_t total = 0;
  for (const Value& v : row) total += v.ByteSize();
  return total;
}

std::string RowToString(const Row& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += "\t";
    out += row[i].ToString();
  }
  return out;
}

}  // namespace dtl
