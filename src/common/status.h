// Status and Result<T>: error-handling primitives in the Arrow/RocksDB idiom.
// Every fallible operation in the library returns a Status (or a Result<T> when
// it produces a value), never throws across module boundaries.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace dtl {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kNotSupported,
  kIoError,
  kCorruption,
  kOutOfRange,
  kBusy,
  kInternal,
};

/// Returns the canonical lowercase name of a status code ("ok", "io error", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional human-readable message.
///
/// The default-constructed Status is OK and carries no allocation. Statuses are
/// cheap to copy and intended to be returned by value.
///
/// The class is [[nodiscard]] and the build treats discarded results as
/// errors (-Werror=unused-result), so every call site must either propagate
/// the Status or consume it explicitly via DTL_IGNORE_STATUS with a reason.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Busy(std::string msg) { return Status(StatusCode::kBusy, std::move(msg)); }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or a non-OK Status explaining why there is none.
/// [[nodiscard]] like Status: dropping a Result silently drops its error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : var_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : var_(std::move(status)) {  // NOLINT: implicit by design
    assert(!std::get<Status>(var_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(var_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(var_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the contained value or `fallback` when holding an error.
  T ValueOr(T fallback) const { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> var_;
};

}  // namespace dtl

/// Explicitly consumes a Status that is intentionally not checked. The
/// mandatory `reason` (a non-empty string literal) makes every swallowed
/// error auditable: `grep -rn DTL_IGNORE_STATUS` lists them all. Prefer
/// propagating; this macro is for destructors, best-effort cleanup, and
/// paths where a prior error is already being reported.
#define DTL_IGNORE_STATUS(expr, reason)                                        \
  do {                                                                         \
    static_assert(sizeof(reason "") > 1, "DTL_IGNORE_STATUS needs a reason");  \
    const ::dtl::Status& _dtl_ignored_status = (expr);                         \
    (void)_dtl_ignored_status;                                                 \
  } while (0)

/// Propagates a non-OK Status to the caller; evaluates `expr` exactly once.
#define DTL_RETURN_NOT_OK(expr)                   \
  do {                                            \
    ::dtl::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Unwraps a Result into `lhs`, returning its Status on error.
#define DTL_ASSIGN_OR_RETURN(lhs, expr)           \
  auto DTL_CONCAT_(_res_, __LINE__) = (expr);     \
  if (!DTL_CONCAT_(_res_, __LINE__).ok())         \
    return DTL_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(DTL_CONCAT_(_res_, __LINE__)).value()

#define DTL_CONCAT_IMPL_(a, b) a##b
#define DTL_CONCAT_(a, b) DTL_CONCAT_IMPL_(a, b)
