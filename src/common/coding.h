// Byte-level encoding primitives shared by the ORC writer, the KV store's
// SSTable/WAL formats, and record-ID key packing: little-endian fixed ints,
// LEB128 varints, zig-zag transforms, length-prefixed strings, and CRC32.
#pragma once

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace dtl {

// --- fixed-width little-endian ---------------------------------------------

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
uint32_t DecodeFixed32(const char* p);
uint64_t DecodeFixed64(const char* p);

// --- LEB128 varints ----------------------------------------------------------

void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);

/// Decodes a varint from the front of *input, advancing it. Returns
/// Corruption if the input ends mid-varint.
Status GetVarint32(Slice* input, uint32_t* value);
Status GetVarint64(Slice* input, uint64_t* value);

// --- zig-zag (signed <-> unsigned) ------------------------------------------

inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// --- length-prefixed strings -------------------------------------------------

void PutLengthPrefixed(std::string* dst, const Slice& value);
Status GetLengthPrefixed(Slice* input, Slice* value);

// --- big-endian fixed (memcmp-sortable keys) ---------------------------------

/// Appends v in big-endian order so that byte order equals numeric order;
/// used for record-ID row keys in the attached table.
void PutBigEndian64(std::string* dst, uint64_t v);
uint64_t DecodeBigEndian64(const char* p);

// --- CRC32 (Castagnoli polynomial, software table) ----------------------------

uint32_t Crc32(const char* data, size_t n);
inline uint32_t Crc32(const Slice& s) { return Crc32(s.data(), s.size()); }

}  // namespace dtl
