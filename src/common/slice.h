// A non-owning view over a byte range, in the RocksDB style. Used at storage
// boundaries (KV store keys/values, file blocks) where copies would dominate.
#pragma once

#include <cstring>
#include <string>
#include <string_view>

namespace dtl {

/// Non-owning pointer+length view of bytes. The referenced storage must
/// outlive the Slice.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* cstr) : data_(cstr), size_(std::strlen(cstr)) {}  // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  /// Drops the first n bytes from the view.
  void RemovePrefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToView() const { return std::string_view(data_, size_); }

  /// Three-way bytewise comparison: <0, 0, >0 like memcmp.
  int Compare(const Slice& other) const {
    size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return 1;
    }
    return r;
  }

  bool StartsWith(const Slice& prefix) const {
    return size_ >= prefix.size_ && std::memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

  bool operator==(const Slice& other) const { return Compare(other) == 0; }
  bool operator!=(const Slice& other) const { return Compare(other) != 0; }
  bool operator<(const Slice& other) const { return Compare(other) < 0; }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace dtl
