#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace dtl {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  std::future<void> fut = pt.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A task enqueued after shutdown would never run and its future would
    // never resolve, deadlocking the caller in get().
    DTL_CHECK(!stop_);
    queue_.push_back(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futs.push_back(Submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futs) f.get();
}

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool), state_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() {
  // Destroying a group with in-flight tasks would leave them racing against
  // freed captures in the caller; Wait() is the contract.
  std::lock_guard<std::mutex> lock(state_->mu);
  DTL_CHECK(state_->pending == 0);
}

void TaskGroup::Spawn(std::function<Status()> task) {
  DTL_CHECK(!waited_);
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    ++state_->pending;
  }
  auto state = state_;
  pool_->Submit([state, task = std::move(task)] {
    Status st;  // skipped-by-cancellation counts as OK
    if (!state->cancelled.load(std::memory_order_acquire)) st = task();
    std::lock_guard<std::mutex> lock(state->mu);
    if (!st.ok() && state->first_error.ok()) {
      state->first_error = st;
      state->cancelled.store(true, std::memory_order_release);
    }
    if (--state->pending == 0) state->cv.notify_all();
  });
}

Status TaskGroup::Wait() {
  DTL_CHECK(!waited_);
  waited_ = true;
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->pending == 0; });
  return state_->first_error;
}

void TaskGroup::Cancel() { state_->cancelled.store(true, std::memory_order_release); }

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace dtl
