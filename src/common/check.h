// Runtime invariant checks in the LevelDB/Abseil idiom.
//
// DTL_CHECK(cond)   — always on, in every build type. Use for invariants whose
//                     violation means memory unsafety or silent data
//                     corruption is next (bounds, monotonicity, framing).
// DTL_DCHECK(cond)  — on in Debug, compiled out in Release (NDEBUG). Use on
//                     hot paths where the check would cost measurable time
//                     per row/batch.
//
// Both print the failing expression with its location and abort, so failures
// surface as crashes in CI (including under the sanitizer jobs) instead of
// propagating garbage. Comparison forms (DTL_CHECK_LE, ...) exist so call
// sites read as the invariant they state.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dtl::detail {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "DTL_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace dtl::detail

#define DTL_CHECK(cond)                                        \
  (__builtin_expect(!(cond), 0)                                \
       ? ::dtl::detail::CheckFailed(__FILE__, __LINE__, #cond) \
       : (void)0)

#define DTL_CHECK_EQ(a, b) DTL_CHECK((a) == (b))
#define DTL_CHECK_NE(a, b) DTL_CHECK((a) != (b))
#define DTL_CHECK_LT(a, b) DTL_CHECK((a) < (b))
#define DTL_CHECK_LE(a, b) DTL_CHECK((a) <= (b))
#define DTL_CHECK_GT(a, b) DTL_CHECK((a) > (b))
#define DTL_CHECK_GE(a, b) DTL_CHECK((a) >= (b))

#ifdef NDEBUG
#define DTL_DCHECK(cond) ((void)0)
#define DTL_DCHECK_EQ(a, b) ((void)0)
#define DTL_DCHECK_NE(a, b) ((void)0)
#define DTL_DCHECK_LT(a, b) ((void)0)
#define DTL_DCHECK_LE(a, b) ((void)0)
#define DTL_DCHECK_GT(a, b) ((void)0)
#define DTL_DCHECK_GE(a, b) ((void)0)
#else
#define DTL_DCHECK(cond) DTL_CHECK(cond)
#define DTL_DCHECK_EQ(a, b) DTL_CHECK_EQ(a, b)
#define DTL_DCHECK_NE(a, b) DTL_CHECK_NE(a, b)
#define DTL_DCHECK_LT(a, b) DTL_CHECK_LT(a, b)
#define DTL_DCHECK_LE(a, b) DTL_CHECK_LE(a, b)
#define DTL_DCHECK_GT(a, b) DTL_CHECK_GT(a, b)
#define DTL_DCHECK_GE(a, b) DTL_CHECK_GE(a, b)
#endif
