// Metadata structures of the ORC-like file: per-column statistics, stripe
// directory entries, and the file footer.
//
// File layout:
//   [stripe 0][stripe 1]...[footer][crc32:4][footer_len:4][magic "DOR1":4]
// Each stripe is the concatenation of per-column (presence, data) stream
// pairs; their lengths and a per-column CRC32 live in the footer so readers
// can position-read only the projected columns and verify them before
// decoding.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace dtl::orc {

inline constexpr uint32_t kOrcMagic = 0x31524F44;  // "DOR1" little-endian

/// Min/max/null statistics for one column within one stripe; drives
/// stripe-level predicate pruning. May additionally carry a serialized
/// bloom filter over the encoded non-null values, so equality predicates
/// can skip stripes whose min/max range covers the probe value.
struct ColumnStats {
  bool has_min_max = false;
  Value min;
  Value max;
  uint64_t null_count = 0;
  uint64_t value_count = 0;  // includes nulls
  /// Serialized dtl::BloomFilter over Value::EncodeTo bytes of the stripe's
  /// non-null values; empty = no filter (legacy files, or bloom disabled).
  std::string bloom;

  /// Folds one observed cell into the stats.
  void Update(const Value& v);

  /// Bloom-probe for an equality predicate. True (may match) when no filter
  /// is present; false only when the filter proves the value absent.
  bool BloomMayContain(const Value& v) const;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, ColumnStats* out);
};

/// Location and size of one column's streams within a stripe.
struct StreamInfo {
  uint64_t presence_length = 0;
  uint64_t data_length = 0;
  /// CRC32 over the concatenated presence+data bytes; verified on every
  /// stripe read so a flipped bit in column data surfaces as Corruption
  /// instead of a garbage decode.
  uint32_t crc = 0;
};

/// Directory entry for one stripe.
struct StripeInfo {
  uint64_t offset = 0;       // byte offset of the stripe in the file
  uint64_t length = 0;       // total stripe bytes
  uint64_t first_row = 0;    // file-level row number of the stripe's first row
  uint64_t num_rows = 0;
  std::vector<StreamInfo> streams;    // one per column
  std::vector<ColumnStats> stats;     // one per column

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, size_t num_columns, StripeInfo* out);
};

/// File footer: identity, schema, and the stripe directory.
struct FileFooter {
  uint64_t file_id = 0;  // DualTable-wide unique file ID (record-ID high bits)
  Schema schema;
  uint64_t num_rows = 0;
  std::vector<StripeInfo> stripes;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice input, FileFooter* out);
};

}  // namespace dtl::orc
