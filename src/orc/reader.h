// Reader for the ORC-like columnar file: footer access, stripe-at-a-time
// column-projected reads, and a row iterator that recovers file-level row
// numbers (the low bits of DualTable record IDs) at read time, exactly as the
// paper exploits ("row numbers are computed during reading operations and
// have no storage cost").
#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "fs/filesystem.h"
#include "orc/orc_types.h"
#include "table/row_batch.h"
#include "table/storage_table.h"

namespace dtl::orc {

class StripeCache;

/// Decoded, projected columns of one stripe. Column i of `columns` holds the
/// values (nulls included) of schema ordinal `projection[i]`.
struct StripeBatch {
  uint64_t first_row = 0;
  uint64_t num_rows = 0;
  /// Encoded bytes read from the file to decode these columns.
  uint64_t encoded_bytes = 0;
  std::vector<size_t> projection;
  std::vector<std::vector<Value>> columns;

  /// Materializes row `i` (0-based within the stripe) over the projection.
  Row GetRow(size_t i) const {
    Row row;
    row.reserve(columns.size());
    for (const auto& col : columns) row.push_back(col[i]);
    return row;
  }

  /// Zero-copy slice: resets `*out` to rows [start, start+count) over
  /// `num_fields` full-width columns, pointing each projected column at this
  /// batch's decoded storage (non-projected columns stay absent -> NULL).
  /// The caller must keep this StripeBatch alive while `out` is in use —
  /// typically by anchoring a shared_ptr via RowBatch::SetAnchor.
  void SliceInto(size_t start, size_t count, size_t num_fields,
                 table::RowBatch* out) const;
};

/// Immutable view of one ORC file. Thread-safe for concurrent reads.
class OrcReader {
 public:
  /// Opens the file, validates the magic/CRC, and decodes the footer.
  static Result<std::unique_ptr<OrcReader>> Open(const fs::SimFileSystem* fs,
                                                 const std::string& path);

  const FileFooter& footer() const { return footer_; }
  const std::string& path() const { return path_; }
  const Schema& schema() const { return footer_.schema; }
  uint64_t file_id() const { return footer_.file_id; }
  uint64_t num_rows() const { return footer_.num_rows; }
  size_t num_stripes() const { return footer_.stripes.size(); }
  const StripeInfo& stripe(size_t i) const { return footer_.stripes[i]; }

  /// Reads and decodes the projected columns of one stripe. An empty
  /// projection means all columns. Only the projected streams' bytes are
  /// read (positioned reads), so narrow projections save metered I/O.
  Result<StripeBatch> ReadStripe(size_t stripe_index,
                                 std::vector<size_t> projection = {}) const;

  /// Like ReadStripe, but serves from a per-reader decoded-stripe cache
  /// (LLAP-style): the file is immutable, so a decoded stripe can be shared
  /// across scans, each taking zero-copy slices anchored by the returned
  /// shared_ptr. LRU-bounded; a hit performs no file I/O and no decoding.
  Result<std::shared_ptr<const StripeBatch>> ReadStripeShared(
      size_t stripe_index, std::vector<size_t> projection = {}) const;

  /// Reads one stripe's encoded bytes verbatim (no decode), verifying every
  /// column's CRC first so incremental COMPACT's raw stripe copy can never
  /// propagate a corrupted stripe into a new master file.
  Result<std::string> ReadRawStripe(size_t stripe_index) const;

  /// Routes ReadStripeShared through a process-wide StripeCache instead of
  /// the per-reader LRU. `owner` is the owning table's unique token and
  /// `generation` the master generation that first registered this file;
  /// both become part of the cache key, so a recycled file id or path after
  /// COMPACT can never be served a pre-swap stripe. Call once right after
  /// Open (before any concurrent reads).
  void SetSharedCache(StripeCache* cache, uint64_t owner, uint64_t generation) {
    shared_cache_ = cache;
    cache_owner_ = owner;
    cache_generation_ = generation;
  }

 private:
  OrcReader(std::unique_ptr<fs::RandomAccessFile> file, FileFooter footer)
      : file_(std::move(file)), footer_(std::move(footer)) {}

  struct CachedStripe {
    size_t stripe_index;
    std::vector<size_t> projection;
    std::shared_ptr<const StripeBatch> batch;
  };
  /// Decoded stripes worth keeping hot per file; at default stripe sizes
  /// this bounds the cache to a few tens of MB.
  static constexpr size_t kMaxCachedStripes = 16;

  std::unique_ptr<fs::RandomAccessFile> file_;
  std::string path_;
  FileFooter footer_;
  /// Shared cache routing (null = legacy per-reader LRU below).
  StripeCache* shared_cache_ = nullptr;
  uint64_t cache_owner_ = 0;
  uint64_t cache_generation_ = 0;
  mutable std::mutex cache_mu_;
  mutable std::list<CachedStripe> cache_;  // front = most recently used
};

/// Streams (row_number, row) pairs across all stripes of one file with a
/// column projection.
class OrcRowIterator {
 public:
  OrcRowIterator(const OrcReader* reader, std::vector<size_t> projection);

  /// Advances to the next row. Returns false at end of file; check status()
  /// afterwards to distinguish EOF from error.
  bool Next();

  /// File-level row number of the current row.
  uint64_t row_number() const { return row_number_; }
  /// Projected values of the current row.
  const Row& row() const { return row_; }

  const Status& status() const { return status_; }

 private:
  const OrcReader* reader_;
  std::vector<size_t> projection_;
  size_t stripe_index_ = 0;
  size_t index_in_stripe_ = 0;
  StripeBatch batch_;
  bool batch_loaded_ = false;
  uint64_t row_number_ = 0;
  Row row_;
  Status status_;
};

/// Streams RowBatches (capacity-bounded slices of decoded stripes) across
/// all stripes of one file. Record IDs are file-level row numbers; callers
/// that need full DualTable record IDs rebase them (MasterScanBatchIterator
/// does). Batches are zero-copy views anchored to the decoded stripe.
class OrcBatchIterator : public table::BatchIterator {
 public:
  /// `meter` defaults to the process-global scan meter when null.
  OrcBatchIterator(const OrcReader* reader, std::vector<size_t> projection,
                   size_t batch_rows = table::kDefaultBatchRows,
                   table::ScanMeter* meter = nullptr);

  bool Next(table::RowBatch* batch) override;
  const Status& status() const override { return status_; }

 private:
  const OrcReader* reader_;
  std::vector<size_t> projection_;
  size_t batch_rows_;
  table::ScanMeter* meter_;
  size_t stripe_index_ = 0;
  size_t offset_in_stripe_ = 0;
  std::shared_ptr<const StripeBatch> stripe_;
  Status status_;
};

}  // namespace dtl::orc
