// Reader for the ORC-like columnar file: footer access, stripe-at-a-time
// column-projected reads, and a row iterator that recovers file-level row
// numbers (the low bits of DualTable record IDs) at read time, exactly as the
// paper exploits ("row numbers are computed during reading operations and
// have no storage cost").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "fs/filesystem.h"
#include "orc/orc_types.h"

namespace dtl::orc {

/// Decoded, projected columns of one stripe. Column i of `columns` holds the
/// values (nulls included) of schema ordinal `projection[i]`.
struct StripeBatch {
  uint64_t first_row = 0;
  uint64_t num_rows = 0;
  std::vector<size_t> projection;
  std::vector<std::vector<Value>> columns;

  /// Materializes row `i` (0-based within the stripe) over the projection.
  Row GetRow(size_t i) const {
    Row row;
    row.reserve(columns.size());
    for (const auto& col : columns) row.push_back(col[i]);
    return row;
  }
};

/// Immutable view of one ORC file. Thread-safe for concurrent reads.
class OrcReader {
 public:
  /// Opens the file, validates the magic/CRC, and decodes the footer.
  static Result<std::unique_ptr<OrcReader>> Open(const fs::SimFileSystem* fs,
                                                 const std::string& path);

  const FileFooter& footer() const { return footer_; }
  const Schema& schema() const { return footer_.schema; }
  uint64_t file_id() const { return footer_.file_id; }
  uint64_t num_rows() const { return footer_.num_rows; }
  size_t num_stripes() const { return footer_.stripes.size(); }
  const StripeInfo& stripe(size_t i) const { return footer_.stripes[i]; }

  /// Reads and decodes the projected columns of one stripe. An empty
  /// projection means all columns. Only the projected streams' bytes are
  /// read (positioned reads), so narrow projections save metered I/O.
  Result<StripeBatch> ReadStripe(size_t stripe_index,
                                 std::vector<size_t> projection = {}) const;

 private:
  OrcReader(std::unique_ptr<fs::RandomAccessFile> file, FileFooter footer)
      : file_(std::move(file)), footer_(std::move(footer)) {}

  std::unique_ptr<fs::RandomAccessFile> file_;
  FileFooter footer_;
};

/// Streams (row_number, row) pairs across all stripes of one file with a
/// column projection.
class OrcRowIterator {
 public:
  OrcRowIterator(const OrcReader* reader, std::vector<size_t> projection);

  /// Advances to the next row. Returns false at end of file; check status()
  /// afterwards to distinguish EOF from error.
  bool Next();

  /// File-level row number of the current row.
  uint64_t row_number() const { return row_number_; }
  /// Projected values of the current row.
  const Row& row() const { return row_; }

  const Status& status() const { return status_; }

 private:
  const OrcReader* reader_;
  std::vector<size_t> projection_;
  size_t stripe_index_ = 0;
  size_t index_in_stripe_ = 0;
  StripeBatch batch_;
  bool batch_loaded_ = false;
  uint64_t row_number_ = 0;
  Row row_;
  Status status_;
};

}  // namespace dtl::orc
