#include "orc/encoding.h"

#include <map>

#include "common/coding.h"

namespace dtl::orc {

namespace {
constexpr size_t kMaxGroup = 0x7FFFFFFF;  // control fits a varint32 comfortably
}

void EncodeInt64Stream(const std::vector<int64_t>& values, std::string* dst) {
  PutVarint64(dst, values.size());
  size_t i = 0;
  const size_t n = values.size();
  while (i < n) {
    // Measure the run starting at i.
    size_t run = 1;
    while (i + run < n && values[i + run] == values[i] && run < kMaxGroup) ++run;
    if (run >= 3) {
      PutVarint64(dst, (static_cast<uint64_t>(run) << 1) | 1);
      PutVarint64(dst, ZigZagEncode(values[i]));
      i += run;
      continue;
    }
    // Collect a literal group up to the next run of >=3.
    size_t start = i;
    while (i < n && i - start < kMaxGroup) {
      size_t r = 1;
      while (i + r < n && values[i + r] == values[i] && r < 3) ++r;
      if (r >= 3) break;
      i += 1;
    }
    size_t count = i - start;
    if (count == 0) {  // immediately at a run boundary; force progress
      count = 1;
      i = start + 1;
    }
    PutVarint64(dst, static_cast<uint64_t>(count) << 1);
    for (size_t j = start; j < start + count; ++j) {
      PutVarint64(dst, ZigZagEncode(values[j]));
    }
  }
}

Status DecodeInt64Stream(Slice input, std::vector<int64_t>* out) {
  uint64_t total = 0;
  DTL_RETURN_NOT_OK(GetVarint64(&input, &total));
  out->clear();
  out->reserve(total);
  while (out->size() < total) {
    uint64_t control = 0;
    DTL_RETURN_NOT_OK(GetVarint64(&input, &control));
    uint64_t count = control >> 1;
    if (count == 0 || out->size() + count > total) {
      return Status::Corruption("bad int64 RLE group");
    }
    if (control & 1) {
      uint64_t zz = 0;
      DTL_RETURN_NOT_OK(GetVarint64(&input, &zz));
      out->insert(out->end(), count, ZigZagDecode(zz));
    } else {
      for (uint64_t j = 0; j < count; ++j) {
        uint64_t zz = 0;
        DTL_RETURN_NOT_OK(GetVarint64(&input, &zz));
        out->push_back(ZigZagDecode(zz));
      }
    }
  }
  return Status::OK();
}

void EncodeDoubleStream(const std::vector<double>& values, std::string* dst) {
  PutVarint64(dst, values.size());
  for (double d : values) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    PutFixed64(dst, bits);
  }
}

Status DecodeDoubleStream(Slice input, std::vector<double>* out) {
  uint64_t total = 0;
  DTL_RETURN_NOT_OK(GetVarint64(&input, &total));
  if (input.size() < total * 8) return Status::Corruption("truncated double stream");
  out->clear();
  out->reserve(total);
  for (uint64_t i = 0; i < total; ++i) {
    uint64_t bits = DecodeFixed64(input.data() + i * 8);
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    out->push_back(d);
  }
  return Status::OK();
}

void EncodeStringStream(const std::vector<std::string>& values, std::string* dst) {
  // First pass: distinct count via an ordered map (keeps encoding deterministic).
  std::map<std::string, int64_t> dict;
  for (const auto& v : values) dict.emplace(v, 0);
  const bool use_dict = !values.empty() && dict.size() * 2 <= values.size();
  if (use_dict) {
    dst->push_back(1);
    int64_t next_id = 0;
    for (auto& [key, id] : dict) id = next_id++;
    PutVarint64(dst, dict.size());
    for (const auto& [key, id] : dict) PutLengthPrefixed(dst, Slice(key));
    std::vector<int64_t> indices;
    indices.reserve(values.size());
    for (const auto& v : values) indices.push_back(dict[v]);
    EncodeInt64Stream(indices, dst);
  } else {
    dst->push_back(0);
    PutVarint64(dst, values.size());
    for (const auto& v : values) PutLengthPrefixed(dst, Slice(v));
  }
}

Status DecodeStringStream(Slice input, std::vector<std::string>* out) {
  if (input.empty()) return Status::Corruption("empty string stream");
  const char mode = input[0];
  input.RemovePrefix(1);
  out->clear();
  if (mode == 1) {
    uint64_t dict_size = 0;
    DTL_RETURN_NOT_OK(GetVarint64(&input, &dict_size));
    std::vector<std::string> dict;
    dict.reserve(dict_size);
    for (uint64_t i = 0; i < dict_size; ++i) {
      Slice s;
      DTL_RETURN_NOT_OK(GetLengthPrefixed(&input, &s));
      dict.push_back(s.ToString());
    }
    std::vector<int64_t> indices;
    DTL_RETURN_NOT_OK(DecodeInt64Stream(input, &indices));
    out->reserve(indices.size());
    for (int64_t idx : indices) {
      if (idx < 0 || static_cast<uint64_t>(idx) >= dict.size()) {
        return Status::Corruption("dictionary index out of range");
      }
      out->push_back(dict[static_cast<size_t>(idx)]);
    }
    return Status::OK();
  }
  if (mode == 0) {
    uint64_t total = 0;
    DTL_RETURN_NOT_OK(GetVarint64(&input, &total));
    out->reserve(total);
    for (uint64_t i = 0; i < total; ++i) {
      Slice s;
      DTL_RETURN_NOT_OK(GetLengthPrefixed(&input, &s));
      out->push_back(s.ToString());
    }
    return Status::OK();
  }
  return Status::Corruption("bad string stream mode");
}

void EncodeBoolStream(const std::vector<bool>& values, std::string* dst) {
  PutVarint64(dst, values.size());
  uint8_t byte = 0;
  int bit = 0;
  for (bool v : values) {
    if (v) byte |= static_cast<uint8_t>(1u << bit);
    if (++bit == 8) {
      dst->push_back(static_cast<char>(byte));
      byte = 0;
      bit = 0;
    }
  }
  if (bit != 0) dst->push_back(static_cast<char>(byte));
}

Status DecodeBoolStream(Slice input, std::vector<bool>* out) {
  uint64_t total = 0;
  DTL_RETURN_NOT_OK(GetVarint64(&input, &total));
  if (input.size() * 8 < total) return Status::Corruption("truncated bool stream");
  out->clear();
  out->reserve(total);
  for (uint64_t i = 0; i < total; ++i) {
    auto byte = static_cast<unsigned char>(input[i / 8]);
    out->push_back((byte >> (i % 8)) & 1);
  }
  return Status::OK();
}

}  // namespace dtl::orc
