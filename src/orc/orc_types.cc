#include "orc/orc_types.h"

#include "common/bloom.h"
#include "common/coding.h"

namespace dtl::orc {

void ColumnStats::Update(const Value& v) {
  ++value_count;
  if (v.is_null()) {
    ++null_count;
    return;
  }
  if (!has_min_max) {
    min = v;
    max = v;
    has_min_max = true;
    return;
  }
  if (v.Compare(min) < 0) min = v;
  if (v.Compare(max) > 0) max = v;
}

bool ColumnStats::BloomMayContain(const Value& v) const {
  if (bloom.empty()) return true;
  std::string key;
  v.EncodeTo(&key);
  return BloomFilter::Deserialize(bloom).MayContain(key);
}

void ColumnStats::EncodeTo(std::string* dst) const {
  // The leading byte is a flag set; legacy files wrote exactly 0 or 1, so
  // bit 0 keeps its historical has_min_max meaning and old footers decode
  // unchanged (no bloom bit, no bloom bytes follow).
  uint8_t flags = 0;
  if (has_min_max) flags |= 1;
  if (!bloom.empty()) flags |= 2;
  dst->push_back(static_cast<char>(flags));
  if (has_min_max) {
    min.EncodeTo(dst);
    max.EncodeTo(dst);
  }
  if (!bloom.empty()) {
    PutVarint64(dst, bloom.size());
    dst->append(bloom);
  }
  PutVarint64(dst, null_count);
  PutVarint64(dst, value_count);
}

Status ColumnStats::DecodeFrom(Slice* input, ColumnStats* out) {
  if (input->empty()) return Status::Corruption("truncated column stats");
  const uint8_t flags = static_cast<uint8_t>((*input)[0]);
  input->RemovePrefix(1);
  out->has_min_max = (flags & 1) != 0;
  if (out->has_min_max) {
    DTL_RETURN_NOT_OK(Value::DecodeFrom(input, &out->min));
    DTL_RETURN_NOT_OK(Value::DecodeFrom(input, &out->max));
  }
  out->bloom.clear();
  if ((flags & 2) != 0) {
    uint64_t bloom_len = 0;
    DTL_RETURN_NOT_OK(GetVarint64(input, &bloom_len));
    if (input->size() < bloom_len) return Status::Corruption("truncated bloom filter");
    out->bloom.assign(input->data(), bloom_len);
    input->RemovePrefix(bloom_len);
  }
  DTL_RETURN_NOT_OK(GetVarint64(input, &out->null_count));
  DTL_RETURN_NOT_OK(GetVarint64(input, &out->value_count));
  return Status::OK();
}

void StripeInfo::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset);
  PutVarint64(dst, length);
  PutVarint64(dst, first_row);
  PutVarint64(dst, num_rows);
  for (const StreamInfo& s : streams) {
    PutVarint64(dst, s.presence_length);
    PutVarint64(dst, s.data_length);
    PutFixed32(dst, s.crc);
  }
  for (const ColumnStats& cs : stats) cs.EncodeTo(dst);
}

Status StripeInfo::DecodeFrom(Slice* input, size_t num_columns, StripeInfo* out) {
  DTL_RETURN_NOT_OK(GetVarint64(input, &out->offset));
  DTL_RETURN_NOT_OK(GetVarint64(input, &out->length));
  DTL_RETURN_NOT_OK(GetVarint64(input, &out->first_row));
  DTL_RETURN_NOT_OK(GetVarint64(input, &out->num_rows));
  out->streams.resize(num_columns);
  for (size_t i = 0; i < num_columns; ++i) {
    DTL_RETURN_NOT_OK(GetVarint64(input, &out->streams[i].presence_length));
    DTL_RETURN_NOT_OK(GetVarint64(input, &out->streams[i].data_length));
    if (input->size() < 4) return Status::Corruption("truncated stream CRC");
    out->streams[i].crc = DecodeFixed32(input->data());
    input->RemovePrefix(4);
  }
  out->stats.resize(num_columns);
  for (size_t i = 0; i < num_columns; ++i) {
    DTL_RETURN_NOT_OK(ColumnStats::DecodeFrom(input, &out->stats[i]));
  }
  return Status::OK();
}

void FileFooter::EncodeTo(std::string* dst) const {
  PutVarint64(dst, file_id);
  schema.EncodeTo(dst);
  PutVarint64(dst, num_rows);
  PutVarint64(dst, stripes.size());
  for (const StripeInfo& s : stripes) s.EncodeTo(dst);
}

Status FileFooter::DecodeFrom(Slice input, FileFooter* out) {
  DTL_RETURN_NOT_OK(GetVarint64(&input, &out->file_id));
  DTL_RETURN_NOT_OK(Schema::DecodeFrom(&input, &out->schema));
  DTL_RETURN_NOT_OK(GetVarint64(&input, &out->num_rows));
  uint64_t num_stripes = 0;
  DTL_RETURN_NOT_OK(GetVarint64(&input, &num_stripes));
  out->stripes.resize(num_stripes);
  for (uint64_t i = 0; i < num_stripes; ++i) {
    DTL_RETURN_NOT_OK(
        StripeInfo::DecodeFrom(&input, out->schema.num_fields(), &out->stripes[i]));
  }
  return Status::OK();
}

}  // namespace dtl::orc
