// Streaming writer for the ORC-like columnar file format.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "fs/filesystem.h"
#include "orc/orc_types.h"

namespace dtl::orc {

struct WriterOptions {
  /// Rows buffered per stripe before encoding and flushing.
  uint64_t stripe_rows = 64 * 1024;
  /// Write per-stripe bloom filters over int64/date/string columns so
  /// equality predicates can skip stripes their min/max range admits.
  /// Filters live in the footer's ColumnStats; legacy readers ignore them.
  bool bloom_filters = true;
  /// Bloom sizing; 10 bits/key ≈ 1% false positives.
  int bloom_bits_per_key = 10;
};

/// Buffers rows column-wise, flushes encoded stripes, and finishes the file
/// with a footer on Close. Not thread-safe; one writer per file.
class OrcWriter {
 public:
  /// Creates a writer for `path`; `file_id` is the DualTable-wide unique ID
  /// recorded in the footer (high bits of every record ID in this file).
  static Result<std::unique_ptr<OrcWriter>> Create(fs::SimFileSystem* fs,
                                                   const std::string& path,
                                                   const Schema& schema, uint64_t file_id,
                                                   WriterOptions options = WriterOptions());

  /// Appends one row; must match the schema arity.
  Status Append(const Row& row);

  /// Appends a whole stripe verbatim from another file with the same schema:
  /// the encoded bytes land unchanged (stream lengths, per-column CRCs, and
  /// column stats carry over), only the stripe's offset and first_row are
  /// rebased into this file. Any buffered rows are flushed as their own
  /// stripe first so row order is preserved. This is incremental COMPACT's
  /// clean-stripe fast path: no decode, no re-encode.
  Status AppendRawStripe(const StripeInfo& info, const std::string& stripe_bytes);

  /// Flushes the pending stripe, writes the footer, and seals the file.
  Status Close();

  uint64_t rows_written() const { return rows_written_; }

 private:
  OrcWriter(std::unique_ptr<fs::WritableFile> file, Schema schema, uint64_t file_id,
            WriterOptions options);

  Status FlushStripe();

  std::unique_ptr<fs::WritableFile> file_;
  Schema schema_;
  WriterOptions options_;
  FileFooter footer_;
  std::vector<Row> pending_;  // row-major buffer for the current stripe
  uint64_t rows_written_ = 0;
  uint64_t file_offset_ = 0;
  bool closed_ = false;
};

}  // namespace dtl::orc
