#include "orc/writer.h"

#include "common/bloom.h"
#include "common/coding.h"
#include "orc/encoding.h"

namespace dtl::orc {

Result<std::unique_ptr<OrcWriter>> OrcWriter::Create(fs::SimFileSystem* fs,
                                                     const std::string& path,
                                                     const Schema& schema, uint64_t file_id,
                                                     WriterOptions options) {
  if (schema.num_fields() == 0) {
    return Status::InvalidArgument("ORC schema must have at least one column");
  }
  if (options.stripe_rows == 0) {
    return Status::InvalidArgument("stripe_rows must be positive");
  }
  DTL_ASSIGN_OR_RETURN(auto file, fs->NewWritableFile(path));
  return std::unique_ptr<OrcWriter>(
      new OrcWriter(std::move(file), schema, file_id, options));
}

OrcWriter::OrcWriter(std::unique_ptr<fs::WritableFile> file, Schema schema,
                     uint64_t file_id, WriterOptions options)
    : file_(std::move(file)), schema_(std::move(schema)), options_(options) {
  footer_.file_id = file_id;
  footer_.schema = schema_;
}

Status OrcWriter::Append(const Row& row) {
  if (closed_) return Status::IoError("append to closed ORC writer");
  if (row.size() != schema_.num_fields()) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " does not match schema arity " +
                                   std::to_string(schema_.num_fields()));
  }
  pending_.push_back(row);
  ++rows_written_;
  if (pending_.size() >= options_.stripe_rows) return FlushStripe();
  return Status::OK();
}

Status OrcWriter::AppendRawStripe(const StripeInfo& info, const std::string& stripe_bytes) {
  if (closed_) return Status::IoError("append to closed ORC writer");
  if (info.streams.size() != schema_.num_fields()) {
    return Status::InvalidArgument("raw stripe column count " +
                                   std::to_string(info.streams.size()) +
                                   " does not match schema arity " +
                                   std::to_string(schema_.num_fields()));
  }
  if (stripe_bytes.size() != info.length) {
    return Status::InvalidArgument("raw stripe byte count disagrees with stripe length");
  }
  DTL_RETURN_NOT_OK(FlushStripe());
  StripeInfo copy = info;
  copy.offset = file_offset_;
  copy.first_row = rows_written_;
  DTL_RETURN_NOT_OK(file_->Append(stripe_bytes));
  file_offset_ += stripe_bytes.size();
  rows_written_ += info.num_rows;
  footer_.stripes.push_back(std::move(copy));
  return Status::OK();
}

Status OrcWriter::FlushStripe() {
  if (pending_.empty()) return Status::OK();
  const size_t num_cols = schema_.num_fields();
  const size_t num_rows = pending_.size();

  StripeInfo stripe;
  stripe.offset = file_offset_;
  stripe.first_row = rows_written_ - num_rows;
  stripe.num_rows = num_rows;
  stripe.streams.resize(num_cols);
  stripe.stats.resize(num_cols);

  std::string stripe_bytes;
  for (size_t col = 0; col < num_cols; ++col) {
    std::vector<bool> presence;
    presence.reserve(num_rows);
    ColumnStats& stats = stripe.stats[col];

    std::string presence_stream;
    std::string data_stream;
    const DataType type = schema_.field(col).type;

    switch (type) {
      case DataType::kInt64:
      case DataType::kDate: {
        std::vector<int64_t> data;
        data.reserve(num_rows);
        for (const Row& r : pending_) {
          const Value& v = r[col];
          stats.Update(v);
          presence.push_back(!v.is_null());
          if (!v.is_null()) data.push_back(v.AsInt64());
        }
        EncodeInt64Stream(data, &data_stream);
        break;
      }
      case DataType::kDouble: {
        std::vector<double> data;
        data.reserve(num_rows);
        for (const Row& r : pending_) {
          const Value& v = r[col];
          stats.Update(v);
          presence.push_back(!v.is_null());
          if (!v.is_null()) data.push_back(v.AsDouble());
        }
        EncodeDoubleStream(data, &data_stream);
        break;
      }
      case DataType::kString: {
        std::vector<std::string> data;
        data.reserve(num_rows);
        for (const Row& r : pending_) {
          const Value& v = r[col];
          stats.Update(v);
          presence.push_back(!v.is_null());
          if (!v.is_null()) data.push_back(v.AsString());
        }
        EncodeStringStream(data, &data_stream);
        break;
      }
      case DataType::kBool: {
        std::vector<bool> data;
        data.reserve(num_rows);
        for (const Row& r : pending_) {
          const Value& v = r[col];
          stats.Update(v);
          presence.push_back(!v.is_null());
          if (!v.is_null()) data.push_back(v.AsBool());
        }
        EncodeBoolStream(data, &data_stream);
        break;
      }
      case DataType::kNull:
        return Status::InvalidArgument("column " + schema_.field(col).name +
                                       " has unsupported type null");
    }

    // Bloom filters only pay off where equality probes happen: integer,
    // date, and string keys. Doubles and bools are left to min/max.
    if (options_.bloom_filters && stats.value_count > stats.null_count &&
        (type == DataType::kInt64 || type == DataType::kDate ||
         type == DataType::kString)) {
      BloomFilter filter(stats.value_count - stats.null_count,
                         options_.bloom_bits_per_key);
      std::string key;
      for (const Row& r : pending_) {
        const Value& v = r[col];
        if (v.is_null()) continue;
        key.clear();
        v.EncodeTo(&key);
        filter.Add(key);
      }
      stats.bloom = filter.Serialize();
    }

    EncodeBoolStream(presence, &presence_stream);
    stripe.streams[col].presence_length = presence_stream.size();
    stripe.streams[col].data_length = data_stream.size();
    const size_t col_start = stripe_bytes.size();
    stripe_bytes += presence_stream;
    stripe_bytes += data_stream;
    stripe.streams[col].crc =
        Crc32(stripe_bytes.data() + col_start, stripe_bytes.size() - col_start);
  }

  stripe.length = stripe_bytes.size();
  DTL_RETURN_NOT_OK(file_->Append(stripe_bytes));
  file_offset_ += stripe_bytes.size();
  footer_.stripes.push_back(std::move(stripe));
  pending_.clear();
  return Status::OK();
}

Status OrcWriter::Close() {
  if (closed_) return Status::OK();
  DTL_RETURN_NOT_OK(FlushStripe());
  footer_.num_rows = rows_written_;

  std::string footer_bytes;
  footer_.EncodeTo(&footer_bytes);

  std::string tail;
  PutFixed32(&tail, Crc32(footer_bytes.data(), footer_bytes.size()));
  PutFixed32(&tail, static_cast<uint32_t>(footer_bytes.size()));
  PutFixed32(&tail, kOrcMagic);

  DTL_RETURN_NOT_OK(file_->Append(footer_bytes));
  DTL_RETURN_NOT_OK(file_->Append(tail));
  closed_ = true;
  return file_->Close();
}

}  // namespace dtl::orc
