#include "orc/stripe_cache.h"

namespace dtl::orc {

StripeCache::StripeCache(size_t capacity_bytes, size_t shards)
    : capacity_bytes_(capacity_bytes == 0 ? 1 : capacity_bytes) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

StripeCache* StripeCache::Default() {
  static StripeCache cache;
  return &cache;
}

uint64_t StripeCache::NewOwnerToken() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

StripeCache::Shard& StripeCache::ShardFor(const Key& key) {
  // owner/file/stripe mix; generation deliberately excluded so one file's
  // generations land in the same shard (EraseOwner still scans all shards).
  const uint64_t h = key.owner * 0x9E3779B97F4A7C15ull + key.file_id * 1315423911ull +
                     key.stripe_index;
  return *shards_[h % shards_.size()];
}

size_t StripeCache::Charge(const StripeBatch& batch) {
  size_t charge = sizeof(StripeBatch);
  for (const auto& col : batch.columns) {
    for (const Value& v : col) charge += v.ByteSize();
  }
  return charge;
}

std::shared_ptr<const StripeBatch> StripeCache::Lookup(
    uint64_t owner, uint64_t file_id, uint64_t generation, size_t stripe_index,
    const std::vector<size_t>& projection) {
  Key key{owner, file_id, generation, stripe_index, projection};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->batch;
}

void StripeCache::Insert(uint64_t owner, uint64_t file_id, uint64_t generation,
                         size_t stripe_index, const std::vector<size_t>& projection,
                         std::shared_ptr<const StripeBatch> batch) {
  if (batch == nullptr) return;
  Key key{owner, file_id, generation, stripe_index, projection};
  Entry entry;
  entry.charge = Charge(*batch);
  entry.batch = std::move(batch);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh in place (a concurrent reader decoded the same stripe).
    shard.bytes -= it->second->charge;
    bytes_.fetch_sub(it->second->charge, std::memory_order_relaxed);
    it->second->charge = entry.charge;
    it->second->batch = std::move(entry.batch);
    shard.bytes += entry.charge;
    bytes_.fetch_add(entry.charge, std::memory_order_relaxed);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  entry.key = key;
  shard.bytes += entry.charge;
  bytes_.fetch_add(entry.charge, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.push_front(std::move(entry));
  shard.index.emplace(std::move(key), shard.lru.begin());
  // Per-shard capacity slice keeps eviction shard-local (no global lock).
  const size_t shard_capacity = capacity_bytes_ / shards_.size() + 1;
  while (shard.bytes > shard_capacity && shard.lru.size() > 1) {
    Entry& victim = shard.lru.back();
    shard.bytes -= victim.charge;
    bytes_.fetch_sub(victim.charge, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    shard.index.erase(victim.key);
    shard.lru.pop_back();
  }
}

void StripeCache::EraseOwner(uint64_t owner) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.owner != owner) {
        ++it;
        continue;
      }
      shard.bytes -= it->charge;
      bytes_.fetch_sub(it->charge, std::memory_order_relaxed);
      entries_.fetch_sub(1, std::memory_order_relaxed);
      shard.index.erase(it->key);
      it = shard.lru.erase(it);
    }
  }
}

StripeCacheStats StripeCache::Stats() const {
  StripeCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dtl::orc
