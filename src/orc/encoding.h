// Per-column stream encodings for the ORC-like container:
//   * int64 / date — zig-zag varints with run-length groups,
//   * double       — raw little-endian fixed64,
//   * string       — dictionary-encoded when the dictionary pays off,
//                    direct length-prefixed otherwise,
//   * boolean      — bit-packed,
//   * presence     — bit-packed null bitmap (data streams hold only
//                    non-null values, as in real ORC).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace dtl::orc {

// --- integer RLE -------------------------------------------------------------

/// Encodes values as groups: control varint c; if c&1 the group is a run of
/// (c>>1) copies of one zig-zag varint, else (c>>1) literal zig-zag varints.
void EncodeInt64Stream(const std::vector<int64_t>& values, std::string* dst);
Status DecodeInt64Stream(Slice input, std::vector<int64_t>* out);

// --- doubles ------------------------------------------------------------------

void EncodeDoubleStream(const std::vector<double>& values, std::string* dst);
Status DecodeDoubleStream(Slice input, std::vector<double>* out);

// --- strings ------------------------------------------------------------------

/// Chooses dictionary encoding when distinct values are at most half of the
/// total (mirrors ORC's dictionary heuristic), direct encoding otherwise.
void EncodeStringStream(const std::vector<std::string>& values, std::string* dst);
Status DecodeStringStream(Slice input, std::vector<std::string>* out);

// --- booleans / presence bitmaps ----------------------------------------------

void EncodeBoolStream(const std::vector<bool>& values, std::string* dst);
Status DecodeBoolStream(Slice input, std::vector<bool>* out);

}  // namespace dtl::orc
