#include "orc/reader.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/coding.h"
#include "orc/encoding.h"
#include "orc/stripe_cache.h"
#include "table/scan_stats.h"

namespace dtl::orc {

void StripeBatch::SliceInto(size_t start, size_t count, size_t num_fields,
                            table::RowBatch* out) const {
  // A slice must stay inside the decoded stripe: the views handed out below
  // point straight into this batch's column storage.
  DTL_CHECK_LE(start + count, num_rows);
  out->Reset(num_fields, count);
  for (size_t p = 0; p < projection.size(); ++p) {
    const size_t col = projection[p];
    if (col >= num_fields) continue;
    DTL_DCHECK_EQ(columns[p].size(), num_rows);
    out->column(col).SetView(columns[p].data() + start, count);
  }
}

Result<std::unique_ptr<OrcReader>> OrcReader::Open(const fs::SimFileSystem* fs,
                                                   const std::string& path) {
  DTL_ASSIGN_OR_RETURN(auto file, fs->NewRandomAccessFile(path));
  const uint64_t size = file->size();
  if (size < 12) return Status::Corruption("file too small to be ORC: " + path);

  std::string tail;
  DTL_RETURN_NOT_OK(file->ReadAt(size - 12, 12, &tail));
  const uint32_t crc = DecodeFixed32(tail.data());
  const uint32_t footer_len = DecodeFixed32(tail.data() + 4);
  const uint32_t magic = DecodeFixed32(tail.data() + 8);
  if (magic != kOrcMagic) return Status::Corruption("bad ORC magic in " + path);
  if (footer_len + 12 > size) return Status::Corruption("bad ORC footer length");

  std::string footer_bytes;
  DTL_RETURN_NOT_OK(file->ReadAt(size - 12 - footer_len, footer_len, &footer_bytes));
  if (Crc32(footer_bytes.data(), footer_bytes.size()) != crc) {
    return Status::Corruption("ORC footer checksum mismatch in " + path);
  }
  FileFooter footer;
  DTL_RETURN_NOT_OK(FileFooter::DecodeFrom(Slice(footer_bytes), &footer));
  // The stripes must tile [0, num_rows) exactly: record IDs are derived from
  // first_row at read time, so a gap or overlap here would silently corrupt
  // every record ID served from this file.
  uint64_t expected_first = 0;
  for (const StripeInfo& s : footer.stripes) {
    if (s.first_row != expected_first) {
      return Status::Corruption("stripe row ranges do not tile the file: " + path);
    }
    expected_first += s.num_rows;
  }
  if (expected_first != footer.num_rows) {
    return Status::Corruption("stripe row counts disagree with footer num_rows: " + path);
  }
  auto reader = std::unique_ptr<OrcReader>(new OrcReader(std::move(file), std::move(footer)));
  reader->path_ = path;
  return reader;
}

namespace {

/// Expands a typed data stream plus presence bitmap into Values with nulls.
template <typename T, typename MakeValue>
Status Materialize(const std::vector<bool>& presence, const std::vector<T>& data,
                   MakeValue make, std::vector<Value>* out) {
  out->clear();
  out->reserve(presence.size());
  size_t data_index = 0;
  for (bool present : presence) {
    if (present) {
      if (data_index >= data.size()) return Status::Corruption("presence/data mismatch");
      out->push_back(make(data[data_index++]));
    } else {
      out->push_back(Value::Null());
    }
  }
  if (data_index != data.size()) return Status::Corruption("presence/data mismatch");
  return Status::OK();
}

}  // namespace

Result<StripeBatch> OrcReader::ReadStripe(size_t stripe_index,
                                          std::vector<size_t> projection) const {
  if (stripe_index >= footer_.stripes.size()) {
    return Status::OutOfRange("stripe index out of range");
  }
  const StripeInfo& info = footer_.stripes[stripe_index];
  const size_t num_cols = footer_.schema.num_fields();
  if (projection.empty()) {
    projection.resize(num_cols);
    std::iota(projection.begin(), projection.end(), 0);
  }

  StripeBatch batch;
  batch.first_row = info.first_row;
  batch.num_rows = info.num_rows;
  batch.projection = projection;
  batch.columns.resize(projection.size());

  // Precompute each column's stream offset within the stripe.
  std::vector<uint64_t> col_offset(num_cols + 1, 0);
  for (size_t c = 0; c < num_cols; ++c) {
    col_offset[c + 1] =
        col_offset[c] + info.streams[c].presence_length + info.streams[c].data_length;
  }

  for (size_t p = 0; p < projection.size(); ++p) {
    const size_t col = projection[p];
    if (col >= num_cols) return Status::OutOfRange("projection ordinal out of range");
    const StreamInfo& streams = info.streams[col];
    batch.encoded_bytes += streams.presence_length + streams.data_length;
    std::string raw;
    DTL_RETURN_NOT_OK(file_->ReadAt(info.offset + col_offset[col],
                                    streams.presence_length + streams.data_length, &raw));
    if (Crc32(raw.data(), raw.size()) != streams.crc) {
      return Status::Corruption("ORC stream checksum mismatch in " + path_);
    }
    Slice presence_slice(raw.data(), streams.presence_length);
    Slice data_slice(raw.data() + streams.presence_length, streams.data_length);

    std::vector<bool> presence;
    DTL_RETURN_NOT_OK(DecodeBoolStream(presence_slice, &presence));
    if (presence.size() != info.num_rows) {
      return Status::Corruption("presence bitmap row-count mismatch");
    }

    std::vector<Value>* out = &batch.columns[p];
    switch (footer_.schema.field(col).type) {
      case DataType::kInt64:
      case DataType::kDate: {
        std::vector<int64_t> data;
        DTL_RETURN_NOT_OK(DecodeInt64Stream(data_slice, &data));
        DTL_RETURN_NOT_OK(
            Materialize(presence, data, [](int64_t v) { return Value::Int64(v); }, out));
        break;
      }
      case DataType::kDouble: {
        std::vector<double> data;
        DTL_RETURN_NOT_OK(DecodeDoubleStream(data_slice, &data));
        DTL_RETURN_NOT_OK(
            Materialize(presence, data, [](double v) { return Value::Double(v); }, out));
        break;
      }
      case DataType::kString: {
        std::vector<std::string> data;
        DTL_RETURN_NOT_OK(DecodeStringStream(data_slice, &data));
        DTL_RETURN_NOT_OK(Materialize(
            presence, data, [](const std::string& v) { return Value::String(v); }, out));
        break;
      }
      case DataType::kBool: {
        std::vector<bool> data;
        DTL_RETURN_NOT_OK(DecodeBoolStream(data_slice, &data));
        DTL_RETURN_NOT_OK(
            Materialize(presence, data, [](bool v) { return Value::Bool(v); }, out));
        break;
      }
      case DataType::kNull:
        return Status::Corruption("column with null type in footer");
    }
  }
  return batch;
}

Result<std::string> OrcReader::ReadRawStripe(size_t stripe_index) const {
  if (stripe_index >= footer_.stripes.size()) {
    return Status::OutOfRange("stripe index out of range");
  }
  const StripeInfo& info = footer_.stripes[stripe_index];
  const size_t num_cols = footer_.schema.num_fields();
  std::string raw;
  DTL_RETURN_NOT_OK(file_->ReadAt(info.offset, info.length, &raw));
  // Verify every column stream before handing the bytes out: the raw-copy
  // path re-publishes them into a new file under the SAME footer CRCs, so a
  // flipped bit here must surface now, not in some later scan.
  uint64_t col_offset = 0;
  for (size_t c = 0; c < num_cols; ++c) {
    const StreamInfo& streams = info.streams[c];
    const uint64_t len = streams.presence_length + streams.data_length;
    if (col_offset + len > raw.size()) {
      return Status::Corruption("stripe stream lengths overflow stripe in " + path_);
    }
    if (Crc32(raw.data() + col_offset, len) != streams.crc) {
      return Status::Corruption("ORC stream checksum mismatch in " + path_);
    }
    col_offset += len;
  }
  if (col_offset != raw.size()) {
    return Status::Corruption("stripe stream lengths disagree with stripe length in " +
                              path_);
  }
  return raw;
}

Result<std::shared_ptr<const StripeBatch>> OrcReader::ReadStripeShared(
    size_t stripe_index, std::vector<size_t> projection) const {
  if (shared_cache_ != nullptr) {
    if (auto hit = shared_cache_->Lookup(cache_owner_, file_id(), cache_generation_,
                                         stripe_index, projection)) {
      return hit;
    }
    auto read = ReadStripe(stripe_index, projection);
    if (!read.ok()) return read.status();
    auto batch = std::make_shared<const StripeBatch>(std::move(read).value());
    shared_cache_->Insert(cache_owner_, file_id(), cache_generation_, stripe_index,
                          std::move(projection), batch);
    return batch;
  }
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->stripe_index == stripe_index && it->projection == projection) {
        cache_.splice(cache_.begin(), cache_, it);  // refresh LRU position
        return cache_.front().batch;
      }
    }
  }
  // Decode outside the lock; concurrent misses may decode twice, both
  // results are identical (the file is immutable).
  auto read = ReadStripe(stripe_index, projection);
  if (!read.ok()) return read.status();
  auto batch = std::make_shared<const StripeBatch>(std::move(read).value());
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.push_front(CachedStripe{stripe_index, std::move(projection), batch});
  while (cache_.size() > kMaxCachedStripes) cache_.pop_back();
  return batch;
}

OrcRowIterator::OrcRowIterator(const OrcReader* reader, std::vector<size_t> projection)
    : reader_(reader), projection_(std::move(projection)) {}

bool OrcRowIterator::Next() {
  if (!status_.ok()) return false;
  while (true) {
    if (!batch_loaded_) {
      if (stripe_index_ >= reader_->num_stripes()) return false;
      auto batch = reader_->ReadStripe(stripe_index_, projection_);
      if (!batch.ok()) {
        status_ = batch.status();
        return false;
      }
      batch_ = std::move(batch).value();
      batch_loaded_ = true;
      index_in_stripe_ = 0;
    }
    if (index_in_stripe_ >= batch_.num_rows) {
      batch_loaded_ = false;
      ++stripe_index_;
      continue;
    }
    row_number_ = batch_.first_row + index_in_stripe_;
    row_ = batch_.GetRow(index_in_stripe_);
    ++index_in_stripe_;
    return true;
  }
}

OrcBatchIterator::OrcBatchIterator(const OrcReader* reader, std::vector<size_t> projection,
                                   size_t batch_rows, table::ScanMeter* meter)
    : reader_(reader),
      projection_(std::move(projection)),
      batch_rows_(std::max<size_t>(1, batch_rows)),
      meter_(meter) {}

bool OrcBatchIterator::Next(table::RowBatch* batch) {
  if (!status_.ok()) return false;
  while (true) {
    if (stripe_ == nullptr || offset_in_stripe_ >= stripe_->num_rows) {
      if (stripe_index_ >= reader_->num_stripes()) return false;
      auto read = reader_->ReadStripeShared(stripe_index_, projection_);
      if (!read.ok()) {
        status_ = read.status();
        return false;
      }
      ++stripe_index_;
      if ((*read)->num_rows == 0) continue;
      stripe_ = std::move(read).value();
      offset_in_stripe_ = 0;
    }
    const size_t count =
        std::min(batch_rows_, static_cast<size_t>(stripe_->num_rows) - offset_in_stripe_);
    stripe_->SliceInto(offset_in_stripe_, count, reader_->schema().num_fields(), batch);
    batch->SetContiguousRecordIds(stripe_->first_row + offset_in_stripe_);
    batch->SetAnchor(stripe_);
    // Charge the stripe's encoded bytes to its first slice only.
    (meter_ != nullptr ? *meter_ : table::GlobalScanMeter())
        .AddBatch(count, offset_in_stripe_ == 0 ? stripe_->encoded_bytes : 0);
    offset_in_stripe_ += count;
    return true;
  }
}

}  // namespace dtl::orc
