// Process-wide sharded LRU cache for hot decoded stripes, generalizing
// OrcReader's per-reader cache (LLAP-style): decoded stripes are shared
// across every reader, session, and scan in the process, so a hot point-
// lookup working set is decoded once and served from memory thereafter.
//
// Key design: file IDs are unique within one MetadataTable but CAN collide
// across independent DualTable universes in one process (tests open many
// SimFileSystems), and a COMPACT may produce a new file under a recycled
// path. The key is therefore (owner, file_id, generation, stripe,
// projection): `owner` is a process-unique token per MasterTable, and
// `generation` is the master generation number that first registered the
// file — a post-COMPACT replacement file gets a fresh file_id AND a fresh
// generation, so a stale pre-swap stripe can never be served for it.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "orc/reader.h"

namespace dtl::orc {

/// Snapshot of one cache's counters (relaxed reads).
struct StripeCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t bytes = 0;      // decoded payload bytes currently resident
  uint64_t entries = 0;    // stripes currently resident
  uint64_t evictions = 0;  // entries dropped to stay under capacity

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Sharded LRU over decoded stripes, keyed by
/// (owner, file_id, generation, stripe_index, projection). Thread-safe;
/// lookups and inserts take one shard mutex. Capacity is measured in
/// decoded-payload bytes (Value::ByteSize sum), evicting least-recently-used
/// entries shard-locally.
class StripeCache {
 public:
  /// ~64MB default capacity: a few thousand hot stripes at bench sizes.
  explicit StripeCache(size_t capacity_bytes = 64ull << 20, size_t shards = 8);

  /// The process-wide instance every MasterTable uses unless its options
  /// inject a private one (tests size theirs small to force eviction).
  static StripeCache* Default();

  /// Allocates a process-unique owner token (one per MasterTable).
  static uint64_t NewOwnerToken();

  /// Returns the cached stripe or nullptr. A hit promotes the entry.
  std::shared_ptr<const StripeBatch> Lookup(uint64_t owner, uint64_t file_id,
                                            uint64_t generation, size_t stripe_index,
                                            const std::vector<size_t>& projection);

  /// Inserts (or refreshes) a decoded stripe, evicting LRU entries if needed.
  void Insert(uint64_t owner, uint64_t file_id, uint64_t generation,
              size_t stripe_index, const std::vector<size_t>& projection,
              std::shared_ptr<const StripeBatch> batch);

  /// Drops every entry belonging to `owner` (table drop / destruction).
  void EraseOwner(uint64_t owner);

  StripeCacheStats Stats() const;

  size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Key {
    uint64_t owner = 0;
    uint64_t file_id = 0;
    uint64_t generation = 0;
    size_t stripe_index = 0;
    std::vector<size_t> projection;

    bool operator<(const Key& rhs) const {
      if (owner != rhs.owner) return owner < rhs.owner;
      if (file_id != rhs.file_id) return file_id < rhs.file_id;
      if (generation != rhs.generation) return generation < rhs.generation;
      if (stripe_index != rhs.stripe_index) return stripe_index < rhs.stripe_index;
      return projection < rhs.projection;
    }
  };

  struct Entry {
    Key key;
    std::shared_ptr<const StripeBatch> batch;
    size_t charge = 0;  // decoded bytes this entry counts against capacity
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::map<Key, std::list<Entry>::iterator> index;
    size_t bytes = 0;
  };

  Shard& ShardFor(const Key& key);
  static size_t Charge(const StripeBatch& batch);

  const size_t capacity_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> entries_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace dtl::orc
