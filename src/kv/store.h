// KvStore: the HBase-analog LSM store. Writes go to the WAL, then the
// memtable; flushes produce SSTables; size-tiered compaction folds SSTables
// together. Reads merge the memtable with all SSTables, newest first, and
// resolve multi-version cells and tombstones with HBase visibility rules.
//
// One KvStore corresponds to one HBase table (a single region — the paper's
// attached tables are keyed by dense numeric record IDs, so range splitting
// adds nothing to the reproduced behaviour and is left out).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/background_scheduler.h"
#include "common/status.h"
#include "fs/filesystem.h"
#include "kv/cell.h"
#include "kv/memtable.h"
#include "kv/sstable.h"
#include "kv/wal.h"

namespace dtl::kv {

/// Qualifier reserved for whole-row delete tombstones; sorts after every
/// application qualifier within a row.
inline constexpr uint32_t kRowTombstoneQualifier = 0xFFFFFFFFu;

struct KvStoreOptions {
  std::string dir;  // e.g. "/hbase/<table>"; must be under the HBase prefix
  size_t memtable_flush_bytes = 8ull << 20;
  int l0_compaction_trigger = 8;
  /// Versions retained per (row, qualifier) through compaction; HBase's
  /// multi-version feature, used to track data change history (paper §V-C).
  int max_versions = 3;
  size_t wal_sync_interval_bytes = 256 * 1024;
  /// Simulated client-side per-put latency (RPC + group-commit share) in
  /// microseconds. An in-process store has no network, so this knob restores
  /// the per-record write cost that real HBase clients pay; benches enable
  /// it, tests leave it at 0. Applied in coarse batches to keep sleeps
  /// accurate.
  double put_latency_micros = 0.0;
  /// When set, size-tiered compaction moves off the write path: WriteCell
  /// still flushes inline (the memtable must not grow unbounded) but leaves
  /// SSTable merging to a scheduler poll job, mirroring HBase's background
  /// compactor threads. nullptr = compact inline on the write path.
  std::shared_ptr<BackgroundScheduler> scheduler;
};

/// Raw merged view over memtable + SSTables: every stored cell (including
/// tombstones and shadowed versions) in CellKey order. The scanner holds its
/// memtable and SSTables alive (shared ownership), so it stays valid across
/// a concurrent flush, compaction, or Clear(); it observes the store as of
/// its creation plus whatever memtable inserts land in the key range ahead
/// of its cursor (the skip list supports lock-free readers).
class CellScanner {
 public:
  ~CellScanner();  // out-of-line: Source is incomplete here

  bool Valid() const { return valid_; }
  void Next();
  const Cell& cell() const { return cell_; }
  const Status& status() const { return status_; }

 private:
  friend class KvStore;
  struct Source;
  CellScanner(std::shared_ptr<const MemTable> mem,
              std::vector<std::shared_ptr<SstReader>> tables, const CellKey* start);

  void FindNext();

  std::vector<std::unique_ptr<Source>> sources_;
  std::shared_ptr<const MemTable> mem_keepalive_;
  std::vector<std::shared_ptr<SstReader>> keepalive_;
  Cell cell_;
  bool valid_ = false;
  Status status_;
};

/// One row's visible state after multi-version and tombstone resolution.
struct RowView {
  std::string row;
  /// Latest visible put per qualifier, ascending by qualifier.
  std::vector<Cell> cells;
};

/// Groups a CellScanner's output by row and applies visibility rules,
/// optionally as of a historical timestamp (cells newer than `as_of` are
/// invisible — HBase's timestamp-range reads).
class RowScanner {
 public:
  /// Advances to the next row that has at least one visible cell.
  bool Next();
  const RowView& view() const { return view_; }
  const Status& status() const { return status_; }

 private:
  friend class KvStore;
  RowScanner(std::unique_ptr<CellScanner> cells, uint64_t as_of)
      : cells_(std::move(cells)), as_of_(as_of) {}

  std::unique_ptr<CellScanner> cells_;
  uint64_t as_of_;
  RowView view_;
  bool cells_primed_ = false;
  Status status_;
};

/// A pinned, immutable view of one KvStore: the memtable and SSTable set as
/// of acquisition, plus the write-clock value at that instant. Scanners built
/// from a snapshot see exactly the cells with timestamp <= read_ts, no matter
/// how many writes, flushes, compactions, or Clear()s land afterwards — the
/// shared_ptrs keep retired structures (and, via fs::RandomAccessFile,
/// deleted SSTable content) alive for the life of the snapshot. Copyable;
/// copies pin the same state.
struct KvSnapshot {
  /// Highest committed timestamp visible to this snapshot.
  uint64_t read_ts = 0;
  std::shared_ptr<const MemTable> mem;
  std::vector<std::shared_ptr<SstReader>> tables;
};

/// Aggregate store statistics, used for cost estimation and tests. Fields
/// are relaxed atomics so concurrent writers can bump them without holding
/// the store mutex; read them individually (the struct itself is not
/// copyable and a multi-field read is not a consistent snapshot).
struct KvStoreStats {
  std::atomic<uint64_t> puts{0};
  std::atomic<uint64_t> deletes{0};
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> flushes{0};
  std::atomic<uint64_t> compactions{0};
  std::atomic<uint64_t> wal_syncs{0};
};

class KvStore {
 public:
  /// Opens (and recovers) a store in `options.dir`. Replays the WAL into the
  /// memtable and registers every existing SSTable.
  static Result<std::unique_ptr<KvStore>> Open(fs::SimFileSystem* fs,
                                               KvStoreOptions options);

  ~KvStore();

  /// Stores a new version of (row, qualifier) with an auto-assigned
  /// timestamp. May trigger a flush and a compaction.
  Status Put(const Slice& row, uint32_t qualifier, const Slice& value);

  /// Stores a cell verbatim (caller-controlled timestamp/type).
  Status PutCell(Cell cell);

  /// Writes a whole-row tombstone.
  Status DeleteRow(const Slice& row);

  /// Writes a single-column tombstone.
  Status DeleteColumn(const Slice& row, uint32_t qualifier);

  /// Latest visible value of (row, qualifier), or nullopt when absent or
  /// masked by a tombstone.
  Result<std::optional<std::string>> Get(const Slice& row, uint32_t qualifier);

  /// Up to max_versions visible (timestamp, value) pairs, newest first.
  Status GetVersions(const Slice& row, uint32_t qualifier, int max_versions,
                     std::vector<std::pair<uint64_t, std::string>>* out);

  /// Raw merged scan from the beginning (or from `start_row`).
  std::unique_ptr<CellScanner> NewCellScanner(const std::string* start_row = nullptr);

  /// Visibility-resolved scan grouped by row, optionally from `start_row`
  /// and as of a historical timestamp (default: latest).
  std::unique_ptr<RowScanner> NewRowScanner(const std::string* start_row = nullptr,
                                            uint64_t as_of = UINT64_MAX);

  /// Pins the store's current state: the memtable, the SSTable set, and the
  /// write clock, captured atomically under the store mutex. Readers built
  /// from the snapshot observe exactly the writes with timestamp <= read_ts.
  KvSnapshot GetSnapshot() const;

  /// Raw merged scan over a pinned snapshot. Note the raw cell stream still
  /// includes cells newer than snapshot.read_ts that were already in the
  /// pinned memtable (the skip list admits concurrent inserts); callers that
  /// need timestamp-exact visibility go through NewRowScannerAt, whose
  /// resolution drops them.
  std::unique_ptr<CellScanner> NewCellScannerAt(
      const KvSnapshot& snapshot, const std::string* start_row = nullptr) const;

  /// Visibility-resolved scan pinned to a snapshot: rows resolve as of
  /// min(as_of, snapshot.read_ts), so later writes — including ones racing
  /// into the still-shared memtable — are invisible.
  std::unique_ptr<RowScanner> NewRowScannerAt(const KvSnapshot& snapshot,
                                              const std::string* start_row = nullptr,
                                              uint64_t as_of = UINT64_MAX) const;

  /// The timestamp assigned to the most recent write (0 when empty). Reads
  /// "as of" this value see the current state. Safe to call concurrently
  /// with writers (relaxed load; writers publish under the store mutex).
  uint64_t LastTimestamp() const { return last_ts_.load(std::memory_order_relaxed); }

  /// Forces the memtable into an SSTable.
  Status Flush();

  /// Forces the live WAL segment to durable storage. An acknowledged write
  /// is only crash-durable once the WAL covering it has synced; DML layers
  /// call this before acknowledging a statement.
  Status SyncWal();

  /// Merges every SSTable (after flushing), keeping at most
  /// options.max_versions live versions per cell and dropping tombstones and
  /// the versions they mask.
  Status Compact();

  /// Drops all data and resets the store to empty.
  Status Clear();

  uint64_t ApproximateCellCount() const;
  uint64_t ApproximateBytes() const;
  size_t NumSstables() const {
    // Locked: the background compactor swaps sstables_ from its own thread.
    std::lock_guard<std::mutex> lock(mu_);
    return sstables_.size();
  }
  const KvStoreStats& stats() const { return stats_; }
  const KvStoreOptions& options() const { return options_; }

 private:
  KvStore(fs::SimFileSystem* fs, KvStoreOptions options)
      : fs_(fs), options_(std::move(options)) {}

  /// Appends `cell` to the WAL and memtable under the store mutex. When
  /// `assign_ts` is set the cell receives the next timestamp (allocated
  /// inside the lock, so concurrent writers get distinct, ordered stamps);
  /// otherwise last_ts_ is advanced to cover the caller-provided stamp.
  Status WriteCell(Cell cell, bool assign_ts);
  Status FlushLocked();
  Status CompactLocked();
  /// Retires every WAL segment up to and including `through_seq` (their
  /// cells are covered by SSTables). A segment that was never synced has no
  /// file; that is not an error.
  Status RetireWalSegmentsLocked(uint64_t through_seq);
  std::string SstPath(uint64_t seq, uint64_t max_ts) const;
  std::string WalSegmentPath(uint64_t seq) const;

  fs::SimFileSystem* fs_;
  KvStoreOptions options_;
  mutable std::mutex mu_;
  /// shared_ptr: live CellScanners keep the memtable a flush or Clear()
  /// replaces, the same way they keep retired SstReaders (concurrent-reader
  /// audit — a raw pointer here was a use-after-free under scan-vs-write
  /// races).
  std::shared_ptr<MemTable> memtable_;
  std::unique_ptr<WalWriter> wal_;
  std::vector<std::shared_ptr<SstReader>> sstables_;  // oldest first
  uint64_t next_sst_seq_ = 1;
  /// WAL segments are numbered; a flush opens segment N+1 before retiring
  /// segment N, so a failed flush never leaves the store without a log.
  uint64_t wal_seq_ = 1;
  /// Highest segment sequence whose file is known deleted; retirement
  /// resumes after it (a crashed retire is retried by the next flush).
  uint64_t retired_wal_seq_ = 0;
  /// Monotonic write clock. Written only under mu_; atomic so LastTimestamp
  /// can read it without taking the lock.
  std::atomic<uint64_t> last_ts_{0};
  double latency_debt_micros_ = 0.0;
  KvStoreStats stats_;
  uint64_t scheduler_job_ = 0;  // background-compaction handle; 0 = none
};

/// Resolves one row's raw cells (all versions, tombstones included, in
/// CellKey order) into the visible latest-put-per-qualifier view, ignoring
/// cells newer than `as_of`. Exposed for tests and for compaction.
void ResolveRowCells(const std::vector<Cell>& raw, int max_versions,
                     std::vector<Cell>* visible, uint64_t as_of = UINT64_MAX);

}  // namespace dtl::kv
