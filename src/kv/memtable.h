// In-memory write buffer of the KV store: a skip list of cells in CellKey
// order, flushed to an SSTable when it exceeds the configured size.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/skiplist.h"
#include "kv/cell.h"

namespace dtl::kv {

/// Sorted in-memory cell buffer. Single writer (the store serializes Add
/// under its mutex); concurrent readers may iterate without locking — the
/// underlying skip list publishes nodes with release/acquire links.
class MemTable {
 public:
  MemTable() : list_(CellKeyCompare()) {}

  void Add(const Cell& cell) {
    approximate_bytes_.fetch_add(cell.ByteSize(), std::memory_order_relaxed);
    list_.Insert(cell.key, cell.value);
  }

  size_t approximate_bytes() const {
    return approximate_bytes_.load(std::memory_order_relaxed);
  }
  size_t cell_count() const { return list_.size(); }
  bool empty() const { return list_.empty(); }

  using List = SkipList<CellKey, CellValue, CellKeyCompare>;

  /// Iterator over cells in key order.
  class Iterator {
   public:
    explicit Iterator(const MemTable* mem) : it_(&mem->list_) {}
    bool Valid() const { return it_.Valid(); }
    void SeekToFirst() { it_.SeekToFirst(); }
    void Seek(const CellKey& target) { it_.Seek(target); }
    void Next() { it_.Next(); }
    Cell cell() const { return Cell{it_.key(), it_.value()}; }

   private:
    List::Iterator it_;
  };

 private:
  friend class Iterator;
  List list_;
  std::atomic<size_t> approximate_bytes_{0};
};

}  // namespace dtl::kv
