// SSTable: the immutable sorted on-"disk" file of the KV store, hosted on
// the simulated file system under the HBase channel prefix (HFiles live on
// HDFS in real HBase).
//
// Layout:
//   [block 0][block 1]...[index][bloom][footer]
//   block  = [encoded cells][crc32:4]
//   footer = [index_off:8][index_len:8][bloom_off:8][bloom_len:8]
//            [entry_count:8][index_crc:4][bloom_crc:4][magic "DSST":4]
// Blocks hold consecutive encoded cells and end with a CRC over the cells;
// the index stores each block's first cell key and offset for binary
// search; the bloom filter is over row keys. Index, bloom, and every block
// are checksummed so silent media corruption surfaces as Status::Corruption
// instead of undefined decode behaviour.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bloom.h"
#include "common/status.h"
#include "fs/filesystem.h"
#include "kv/cell.h"

namespace dtl::kv {

inline constexpr uint32_t kSstMagic = 0x54535344;  // "DSST" little-endian
inline constexpr size_t kSstBlockBytes = 32 * 1024;

/// Writes cells (which must arrive in CellKey order) into an SSTable file.
class SstWriter {
 public:
  static Result<std::unique_ptr<SstWriter>> Create(fs::SimFileSystem* fs,
                                                   const std::string& path,
                                                   size_t expected_cells);

  /// Appends a cell; keys must be non-decreasing in CellKey order.
  Status Add(const Cell& cell);

  Status Finish();

  uint64_t cell_count() const { return cell_count_; }

 private:
  SstWriter(std::unique_ptr<fs::WritableFile> file, size_t expected_cells)
      : file_(std::move(file)), bloom_(expected_cells) {}

  Status FlushBlock();

  struct IndexEntry {
    CellKey first_key;
    uint64_t offset = 0;
    uint64_t length = 0;
  };

  std::unique_ptr<fs::WritableFile> file_;
  BloomFilter bloom_;
  std::string block_;
  std::optional<CellKey> block_first_key_;
  std::optional<CellKey> last_key_;
  std::vector<IndexEntry> index_;
  uint64_t offset_ = 0;
  uint64_t cell_count_ = 0;
  bool finished_ = false;
};

/// Immutable reader over one SSTable. Thread-safe.
class SstReader {
 public:
  static Result<std::unique_ptr<SstReader>> Open(const fs::SimFileSystem* fs,
                                                 const std::string& path);

  /// Returns all versions of (row, qualifier) cells in this table, newest
  /// first, via the bloom filter + block index. `out` is appended to.
  Status GetVersions(const Slice& row, uint32_t qualifier, int max_versions,
                     std::vector<Cell>* out) const;

  /// True when the bloom filter admits the row (possibly false positive).
  bool MayContainRow(const Slice& row) const;

  uint64_t cell_count() const { return cell_count_; }
  const std::string& path() const { return path_; }

  /// Forward iterator over every cell in key order.
  class Iterator {
   public:
    explicit Iterator(const SstReader* reader);
    bool Valid() const { return valid_; }
    void SeekToFirst();
    /// Positions at the first cell with key >= target.
    void Seek(const CellKey& target);
    void Next();
    const Cell& cell() const { return cell_; }
    const Status& status() const { return status_; }

   private:
    bool LoadBlock(size_t block_index);
    void DecodeNextInBlock();

    const SstReader* reader_;
    size_t block_index_ = 0;
    std::string block_data_;
    Slice block_rest_;
    Cell cell_;
    bool valid_ = false;
    Status status_;
  };

 private:
  struct IndexEntry {
    CellKey first_key;
    uint64_t offset = 0;
    uint64_t length = 0;
  };

  SstReader() : bloom_(BloomFilter::Deserialize(Slice())) {}

  Status ReadBlock(size_t block_index, std::string* out) const;

  std::unique_ptr<fs::RandomAccessFile> file_;
  std::string path_;
  std::vector<IndexEntry> index_;
  BloomFilter bloom_;
  uint64_t cell_count_ = 0;
};

}  // namespace dtl::kv
