#include "kv/store.h"

#include <algorithm>
#include <charconv>
#include <map>

namespace dtl::kv {

// --- CellScanner --------------------------------------------------------------

/// One input of the k-way merge: the memtable or an SSTable. Lower rank wins
/// ties on identical keys (rank 0 = memtable = newest data).
struct CellScanner::Source {
  std::unique_ptr<MemTable::Iterator> mem_it;
  std::unique_ptr<SstReader::Iterator> sst_it;
  int rank = 0;

  bool Valid() const { return mem_it ? mem_it->Valid() : sst_it->Valid(); }
  Cell cell() const { return mem_it ? mem_it->cell() : sst_it->cell(); }
  void Next() {
    if (mem_it) {
      mem_it->Next();
    } else {
      sst_it->Next();
    }
  }
  Status status() const { return mem_it ? Status::OK() : sst_it->status(); }
};

CellScanner::~CellScanner() = default;

CellScanner::CellScanner(std::shared_ptr<const MemTable> mem,
                         std::vector<std::shared_ptr<SstReader>> tables,
                         const CellKey* start) {
  int rank = 0;
  if (mem != nullptr) {
    auto src = std::make_unique<Source>();
    src->mem_it = std::make_unique<MemTable::Iterator>(mem.get());
    if (start != nullptr) {
      src->mem_it->Seek(*start);
    } else {
      src->mem_it->SeekToFirst();
    }
    src->rank = rank++;
    sources_.push_back(std::move(src));
  }
  // Newest SSTable gets the lower rank.
  for (auto it = tables.rbegin(); it != tables.rend(); ++it) {
    auto src = std::make_unique<Source>();
    src->sst_it = std::make_unique<SstReader::Iterator>(it->get());
    if (start != nullptr) {
      src->sst_it->Seek(*start);
    } else {
      src->sst_it->SeekToFirst();
    }
    src->rank = rank++;
    sources_.push_back(std::move(src));
  }
  // Keep the memtable and SstReaders alive for the life of the scan: a
  // concurrent flush/compaction/Clear may retire either from the store.
  mem_keepalive_ = std::move(mem);
  keepalive_ = std::move(tables);
  FindNext();
}

void CellScanner::FindNext() {
  while (true) {
    Source* best = nullptr;
    for (auto& src : sources_) {
      if (!src->status().ok()) {
        status_ = src->status();
        valid_ = false;
        return;
      }
      if (!src->Valid()) continue;
      if (best == nullptr) {
        best = src.get();
        continue;
      }
      int c = src->cell().key.Compare(best->cell().key);
      if (c < 0 || (c == 0 && src->rank < best->rank)) best = src.get();
    }
    if (best == nullptr) {
      valid_ = false;
      return;
    }
    Cell candidate = best->cell();
    // Advance every source positioned at this exact key (dedup shadowed copies).
    for (auto& src : sources_) {
      while (src->Valid() && src->cell().key.Compare(candidate.key) == 0) src->Next();
    }
    cell_ = std::move(candidate);
    valid_ = true;
    return;
  }
}

void CellScanner::Next() {
  if (!valid_) return;
  FindNext();
}

// --- visibility resolution -----------------------------------------------------

void ResolveRowCells(const std::vector<Cell>& raw, int max_versions,
                     std::vector<Cell>* visible, uint64_t as_of) {
  visible->clear();
  if (raw.empty()) return;
  // Row tombstone timestamp (cells may appear anywhere; reserved qualifier
  // sorts last, so scan for it first).
  uint64_t row_tomb_ts = 0;
  for (const Cell& c : raw) {
    if (c.key.timestamp > as_of) continue;
    if (c.value.type == CellType::kDeleteRow && c.key.timestamp > row_tomb_ts) {
      row_tomb_ts = c.key.timestamp;
    }
  }
  // Cells arrive qualifier-ascending, timestamp-descending.
  size_t i = 0;
  while (i < raw.size()) {
    const uint32_t qual = raw[i].key.qualifier;
    uint64_t col_tomb_ts = 0;
    // First pass over this qualifier group: find the column tombstone.
    size_t j = i;
    while (j < raw.size() && raw[j].key.qualifier == qual) {
      if (raw[j].value.type == CellType::kDeleteColumn &&
          raw[j].key.timestamp <= as_of && raw[j].key.timestamp > col_tomb_ts) {
        col_tomb_ts = raw[j].key.timestamp;
      }
      ++j;
    }
    const uint64_t mask_ts = std::max(row_tomb_ts, col_tomb_ts);
    int taken = 0;
    for (size_t k = i; k < j && taken < max_versions; ++k) {
      const Cell& c = raw[k];
      if (c.value.type != CellType::kPut) continue;
      if (c.key.timestamp > as_of) continue;
      if (c.key.timestamp <= mask_ts) continue;
      visible->push_back(c);
      ++taken;
    }
    i = j;
  }
}

// --- RowScanner ----------------------------------------------------------------

bool RowScanner::Next() {
  if (!status_.ok()) return false;
  while (true) {
    if (!cells_->Valid()) {
      status_ = cells_->status();
      return false;
    }
    std::vector<Cell> raw;
    const std::string row = cells_->cell().key.row;
    while (cells_->Valid() && cells_->cell().key.row == row) {
      raw.push_back(cells_->cell());
      cells_->Next();
    }
    if (!cells_->status().ok()) {
      status_ = cells_->status();
      return false;
    }
    std::vector<Cell> visible;
    ResolveRowCells(raw, /*max_versions=*/1, &visible, as_of_);
    if (visible.empty()) continue;  // fully deleted (or not-yet-written) row
    view_.row = row;
    view_.cells = std::move(visible);
    return true;
  }
}

// --- KvStore --------------------------------------------------------------------

Result<std::unique_ptr<KvStore>> KvStore::Open(fs::SimFileSystem* fs,
                                               KvStoreOptions options) {
  if (options.dir.empty() || options.dir.back() == '/') {
    return Status::InvalidArgument("KvStore dir must be a non-slash-terminated path");
  }
  auto store = std::unique_ptr<KvStore>(new KvStore(fs, std::move(options)));
  DTL_RETURN_NOT_OK(fs->CreateDir(store->options_.dir));
  store->memtable_ = std::make_shared<MemTable>();

  // Inventory the directory: published SSTables ("sst_<seq>_<maxts>.sst"),
  // WAL segments ("wal_<seq>.log"), and unpublished ".tmp" leftovers from a
  // flush or compaction that crashed before its rename commit.
  DTL_ASSIGN_OR_RETURN(auto names, fs->ListDir(store->options_.dir));
  std::vector<std::pair<uint64_t, std::string>> found;         // (seq, name)
  std::vector<std::pair<uint64_t, std::string>> wal_segments;  // (seq, name)
  uint64_t max_wal_seq = 0;
  uint64_t min_wal_seq = UINT64_MAX;
  for (const std::string& name : names) {
    const char* end = name.data() + name.size();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      // Never published: its writer crashed before the rename commit, so no
      // acknowledged data can live here. Discard.
      DTL_RETURN_NOT_OK(fs->Delete(fs::JoinPath(store->options_.dir, name)));
      continue;
    }
    if (name.rfind("wal_", 0) == 0) {
      uint64_t seq = 0;
      auto r = std::from_chars(name.data() + 4, end, seq);
      if (r.ec != std::errc() || std::string(r.ptr, end - r.ptr) != ".log") continue;
      wal_segments.emplace_back(seq, name);
      max_wal_seq = std::max(max_wal_seq, seq);
      min_wal_seq = std::min(min_wal_seq, seq);
      continue;
    }
    if (name.rfind("sst_", 0) != 0 || name.size() < 9) continue;
    uint64_t seq = 0, max_ts = 0;
    auto r1 = std::from_chars(name.data() + 4, end, seq);
    if (r1.ec != std::errc() || r1.ptr >= end || *r1.ptr != '_') continue;
    auto r2 = std::from_chars(r1.ptr + 1, end, max_ts);
    if (r2.ec != std::errc() || std::string(r2.ptr, end - r2.ptr) != ".sst") continue;
    found.emplace_back(seq, name);
    store->next_sst_seq_ = std::max(store->next_sst_seq_, seq + 1);
    if (max_ts > store->last_ts_.load(std::memory_order_relaxed)) {
      store->last_ts_.store(max_ts, std::memory_order_relaxed);
    }
  }
  std::sort(found.begin(), found.end());
  for (const auto& [seq, name] : found) {
    DTL_ASSIGN_OR_RETURN(auto reader,
                         SstReader::Open(fs, fs::JoinPath(store->options_.dir, name)));
    store->sstables_.push_back(std::move(reader));
  }

  // Replay surviving WAL segments, oldest first, into the memtable. A
  // segment whose flush committed but whose retirement was interrupted
  // replays cells that already live in an SSTable; identical (row,
  // qualifier, timestamp) cells deduplicate at read time, so the replay is
  // idempotent.
  std::sort(wal_segments.begin(), wal_segments.end());
  std::vector<Cell> recovered;
  for (const auto& [seq, name] : wal_segments) {
    DTL_RETURN_NOT_OK(
        ReplayWal(fs, fs::JoinPath(store->options_.dir, name), &recovered));
  }
  for (Cell& cell : recovered) {
    if (cell.key.timestamp > store->last_ts_.load(std::memory_order_relaxed)) {
      store->last_ts_.store(cell.key.timestamp, std::memory_order_relaxed);
    }
    store->memtable_->Add(cell);
  }

  store->wal_seq_ = max_wal_seq + 1;
  store->retired_wal_seq_ =
      wal_segments.empty() ? max_wal_seq : min_wal_seq - 1;
  DTL_ASSIGN_OR_RETURN(store->wal_,
                       WalWriter::Create(fs, store->WalSegmentPath(store->wal_seq_),
                                         store->options_.wal_sync_interval_bytes));
  if (store->options_.scheduler != nullptr) {
    // Deferred size-tiered compaction: the write path only flushes; the
    // scheduler merges SSTables once the tier trigger is exceeded. Raw
    // pointer is safe — ~KvStore unregisters (blocking) first.
    KvStore* raw = store.get();
    store->scheduler_job_ = store->options_.scheduler->Register(
        "kv-compact:" + store->options_.dir, [raw] {
          bool over_trigger = false;
          {
            std::lock_guard<std::mutex> lock(raw->mu_);
            over_trigger = static_cast<int>(raw->sstables_.size()) >
                           raw->options_.l0_compaction_trigger;
          }
          if (!over_trigger) return;
          DTL_IGNORE_STATUS(raw->Compact(),
                            "background compaction failure is retried next round");
        });
  }
  return store;
}

KvStore::~KvStore() {
  if (scheduler_job_ != 0) options_.scheduler->Unregister(scheduler_job_);
  if (wal_ != nullptr) {
    DTL_IGNORE_STATUS(wal_->Close(),
                      "destructor cannot propagate; every record is already synced or lost "
                      "with the process");
  }
}

std::string KvStore::SstPath(uint64_t seq, uint64_t max_ts) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "sst_%06llu_%llu.sst",
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(max_ts));
  return fs::JoinPath(options_.dir, buf);
}

std::string KvStore::WalSegmentPath(uint64_t seq) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal_%06llu.log", static_cast<unsigned long long>(seq));
  return fs::JoinPath(options_.dir, buf);
}

Status KvStore::RetireWalSegmentsLocked(uint64_t through_seq) {
  for (uint64_t seq = retired_wal_seq_ + 1; seq <= through_seq; ++seq) {
    Status st = fs_->Delete(WalSegmentPath(seq));
    // A segment that never synced has no file; nothing to retire.
    if (!st.ok() && !st.IsNotFound()) return st;
    retired_wal_seq_ = seq;
  }
  return Status::OK();
}

Status KvStore::WriteCell(Cell cell, bool assign_ts) {
  int64_t sleep_micros = 0;
  Status st;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The write clock is advanced inside the lock so concurrent writers get
    // distinct, ordered timestamps (plain stores suffice: mu_ serializes all
    // writers; the atomic exists for lock-free LastTimestamp readers).
    if (assign_ts) {
      cell.key.timestamp = last_ts_.load(std::memory_order_relaxed) + 1;
      last_ts_.store(cell.key.timestamp, std::memory_order_relaxed);
    } else if (cell.key.timestamp > last_ts_.load(std::memory_order_relaxed)) {
      last_ts_.store(cell.key.timestamp, std::memory_order_relaxed);
    }
    if (options_.put_latency_micros > 0) {
      latency_debt_micros_ += options_.put_latency_micros;
      if (latency_debt_micros_ >= 2000.0) {  // pay the debt in >=2ms slices
        sleep_micros = static_cast<int64_t>(latency_debt_micros_);
        latency_debt_micros_ = 0;
      }
    }
    st = wal_->Append(cell);
    if (st.ok()) {
      memtable_->Add(cell);
      if (memtable_->approximate_bytes() >= options_.memtable_flush_bytes) {
        st = FlushLocked();
        if (st.ok() &&
            static_cast<int>(sstables_.size()) > options_.l0_compaction_trigger) {
          if (options_.scheduler != nullptr) {
            // Compaction is the scheduler's job; just nudge it so the tier
            // debt is paid promptly rather than at the next poll tick.
            options_.scheduler->Wake();
          } else {
            st = CompactLocked();
          }
        }
      }
    }
  }
  // Simulated client-side RPC latency is paid with the store mutex released:
  // the writing client waits, but the store stays available to other clients
  // (the scripts/lint.py no-sleep-under-lock invariant depends on this).
  if (sleep_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_micros));
  }
  return st;
}

Status KvStore::Put(const Slice& row, uint32_t qualifier, const Slice& value) {
  if (qualifier == kRowTombstoneQualifier) {
    return Status::InvalidArgument("qualifier is reserved for row tombstones");
  }
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  Cell cell;
  cell.key = CellKey{row.ToString(), qualifier, 0};
  cell.value = CellValue{CellType::kPut, value.ToString()};
  return WriteCell(std::move(cell), /*assign_ts=*/true);
}

Status KvStore::PutCell(Cell cell) {
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  return WriteCell(std::move(cell), /*assign_ts=*/false);
}

Status KvStore::DeleteRow(const Slice& row) {
  stats_.deletes.fetch_add(1, std::memory_order_relaxed);
  Cell cell;
  cell.key = CellKey{row.ToString(), kRowTombstoneQualifier, 0};
  cell.value = CellValue{CellType::kDeleteRow, ""};
  return WriteCell(std::move(cell), /*assign_ts=*/true);
}

Status KvStore::DeleteColumn(const Slice& row, uint32_t qualifier) {
  if (qualifier == kRowTombstoneQualifier) {
    return Status::InvalidArgument("qualifier is reserved for row tombstones");
  }
  stats_.deletes.fetch_add(1, std::memory_order_relaxed);
  Cell cell;
  cell.key = CellKey{row.ToString(), qualifier, 0};
  cell.value = CellValue{CellType::kDeleteColumn, ""};
  return WriteCell(std::move(cell), /*assign_ts=*/true);
}

Status KvStore::GetVersions(const Slice& row, uint32_t qualifier, int max_versions,
                            std::vector<std::pair<uint64_t, std::string>>* out) {
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  out->clear();
  // Collect every version of (row, qualifier) plus the row tombstone, then
  // resolve. Row groups are tiny, so materializing them is cheap.
  std::vector<Cell> raw;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto collect = [&raw, &row](auto& it, uint32_t qual) {
      CellKey start{row.ToString(), qual, UINT64_MAX};
      it.Seek(start);
      while (it.Valid()) {
        Cell c = it.cell();
        if (c.key.row != row.ToView() || c.key.qualifier != qual) break;
        raw.push_back(std::move(c));
        it.Next();
      }
    };
    for (uint32_t qual : {qualifier, kRowTombstoneQualifier}) {
      MemTable::Iterator mem_it(memtable_.get());
      collect(mem_it, qual);
      for (auto& sst : sstables_) {
        if (!sst->MayContainRow(row)) continue;
        SstReader::Iterator sst_it(sst.get());
        collect(sst_it, qual);
        DTL_RETURN_NOT_OK(sst_it.status());
      }
    }
  }
  std::sort(raw.begin(), raw.end(),
            [](const Cell& a, const Cell& b) { return a.key.Compare(b.key) < 0; });
  raw.erase(std::unique(raw.begin(), raw.end(),
                        [](const Cell& a, const Cell& b) {
                          return a.key.Compare(b.key) == 0;
                        }),
            raw.end());
  std::vector<Cell> visible;
  ResolveRowCells(raw, max_versions, &visible);
  for (const Cell& c : visible) {
    if (c.key.qualifier == qualifier) out->emplace_back(c.key.timestamp, c.value.value);
  }
  return Status::OK();
}

Result<std::optional<std::string>> KvStore::Get(const Slice& row, uint32_t qualifier) {
  std::vector<std::pair<uint64_t, std::string>> versions;
  DTL_RETURN_NOT_OK(GetVersions(row, qualifier, 1, &versions));
  if (versions.empty()) return std::optional<std::string>();
  return std::optional<std::string>(std::move(versions[0].second));
}

std::unique_ptr<CellScanner> KvStore::NewCellScanner(const std::string* start_row) {
  std::lock_guard<std::mutex> lock(mu_);
  std::optional<CellKey> start;
  if (start_row != nullptr) start = CellKey{*start_row, 0, UINT64_MAX};
  return std::unique_ptr<CellScanner>(new CellScanner(
      memtable_, sstables_, start.has_value() ? &*start : nullptr));
}

std::unique_ptr<RowScanner> KvStore::NewRowScanner(const std::string* start_row,
                                                   uint64_t as_of) {
  return std::unique_ptr<RowScanner>(new RowScanner(NewCellScanner(start_row), as_of));
}

KvSnapshot KvStore::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  KvSnapshot snapshot;
  snapshot.read_ts = last_ts_.load(std::memory_order_relaxed);
  snapshot.mem = memtable_;
  snapshot.tables = sstables_;
  return snapshot;
}

std::unique_ptr<CellScanner> KvStore::NewCellScannerAt(const KvSnapshot& snapshot,
                                                       const std::string* start_row) const {
  // No lock: the snapshot already owns its sources; the store's current
  // memtable_/sstables_ are irrelevant here.
  std::optional<CellKey> start;
  if (start_row != nullptr) start = CellKey{*start_row, 0, UINT64_MAX};
  return std::unique_ptr<CellScanner>(new CellScanner(
      snapshot.mem, snapshot.tables, start.has_value() ? &*start : nullptr));
}

std::unique_ptr<RowScanner> KvStore::NewRowScannerAt(const KvSnapshot& snapshot,
                                                     const std::string* start_row,
                                                     uint64_t as_of) const {
  // Clamp visibility to the snapshot's clock: cells racing into the pinned
  // memtable after acquisition carry larger timestamps and resolve away.
  const uint64_t effective = std::min(as_of, snapshot.read_ts);
  return std::unique_ptr<RowScanner>(
      new RowScanner(NewCellScannerAt(snapshot, start_row), effective));
}

Status KvStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status KvStore::FlushLocked() {
  if (memtable_->empty()) return Status::OK();
  stats_.flushes.fetch_add(1, std::memory_order_relaxed);
  // Open the next WAL segment before anything else: until the SSTable's
  // rename commit lands, the old segment still covers every cell, so a
  // failure at any point below loses nothing and leaves the store writable.
  const uint64_t new_wal_seq = wal_seq_ + 1;
  DTL_ASSIGN_OR_RETURN(auto new_wal,
                       WalWriter::Create(fs_, WalSegmentPath(new_wal_seq),
                                         options_.wal_sync_interval_bytes));
  // Stage the SSTable under a ".tmp" name and publish it with an atomic
  // rename; a crash mid-write leaves only an unpublished temp file.
  const std::string path = SstPath(next_sst_seq_++, last_ts_.load(std::memory_order_relaxed));
  const std::string tmp_path = path + ".tmp";
  DTL_ASSIGN_OR_RETURN(auto writer, SstWriter::Create(fs_, tmp_path, memtable_->cell_count()));
  MemTable::Iterator it(memtable_.get());
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    DTL_RETURN_NOT_OK(writer->Add(it.cell()));
  }
  DTL_RETURN_NOT_OK(writer->Finish());
  DTL_RETURN_NOT_OK(fs_->Rename(tmp_path, path));
  DTL_ASSIGN_OR_RETURN(auto reader, SstReader::Open(fs_, path));
  sstables_.push_back(std::move(reader));
  // Replace, don't clear: live CellScanners still share the old memtable.
  memtable_ = std::make_shared<MemTable>();
  // Switch to the fresh segment; the old writer is dropped (its cells are
  // all in the SSTable now) and its file retired.
  const uint64_t old_wal_seq = wal_seq_;
  wal_ = std::move(new_wal);
  wal_seq_ = new_wal_seq;
  return RetireWalSegmentsLocked(old_wal_seq);
}

Status KvStore::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  DTL_RETURN_NOT_OK(FlushLocked());
  return CompactLocked();
}

Status KvStore::CompactLocked() {
  if (sstables_.size() <= 1) return Status::OK();
  stats_.compactions.fetch_add(1, std::memory_order_relaxed);
  // Full merge with visibility resolution per row; tombstones and shadowed
  // versions are dropped (nothing below survives a full compaction).
  CellScanner scanner(nullptr, sstables_, nullptr);
  const std::string path = SstPath(next_sst_seq_++, last_ts_.load(std::memory_order_relaxed));
  const std::string tmp_path = path + ".tmp";
  uint64_t expected = 0;
  for (const auto& sst : sstables_) expected += sst->cell_count();
  DTL_ASSIGN_OR_RETURN(auto writer, SstWriter::Create(fs_, tmp_path, expected));

  while (scanner.Valid()) {
    std::vector<Cell> raw;
    const std::string row = scanner.cell().key.row;
    while (scanner.Valid() && scanner.cell().key.row == row) {
      raw.push_back(scanner.cell());
      scanner.Next();
    }
    DTL_RETURN_NOT_OK(scanner.status());
    std::vector<Cell> visible;
    ResolveRowCells(raw, options_.max_versions, &visible);
    for (const Cell& c : visible) DTL_RETURN_NOT_OK(writer->Add(c));
  }
  DTL_RETURN_NOT_OK(scanner.status());
  DTL_RETURN_NOT_OK(writer->Finish());
  // Atomic commit: the merged table becomes visible in one rename. A crash
  // before this point leaves only the temp file; a crash after it leaves the
  // merged table plus not-yet-deleted inputs, whose surviving cells are
  // shadowed copies of what the merged table already serves.
  DTL_RETURN_NOT_OK(fs_->Rename(tmp_path, path));

  std::vector<std::string> old_paths;
  old_paths.reserve(sstables_.size());
  for (const auto& sst : sstables_) old_paths.push_back(sst->path());
  sstables_.clear();
  DTL_ASSIGN_OR_RETURN(auto reader, SstReader::Open(fs_, path));
  sstables_.push_back(std::move(reader));
  for (const std::string& p : old_paths) DTL_RETURN_NOT_OK(fs_->Delete(p));
  return Status::OK();
}

Status KvStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // Same segment discipline as FlushLocked: open the replacement log first
  // so a failure below never leaves the store without a writable WAL.
  const uint64_t new_wal_seq = wal_seq_ + 1;
  DTL_ASSIGN_OR_RETURN(auto new_wal,
                       WalWriter::Create(fs_, WalSegmentPath(new_wal_seq),
                                         options_.wal_sync_interval_bytes));
  for (const auto& sst : sstables_) DTL_RETURN_NOT_OK(fs_->Delete(sst->path()));
  sstables_.clear();
  memtable_ = std::make_shared<MemTable>();
  const uint64_t old_wal_seq = wal_seq_;
  wal_ = std::move(new_wal);
  wal_seq_ = new_wal_seq;
  return RetireWalSegmentsLocked(old_wal_seq);
}

Status KvStore::SyncWal() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.wal_syncs.fetch_add(1, std::memory_order_relaxed);
  return wal_->Sync();
}

uint64_t KvStore::ApproximateCellCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = memtable_->cell_count();
  for (const auto& sst : sstables_) total += sst->cell_count();
  return total;
}

uint64_t KvStore::ApproximateBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = memtable_->approximate_bytes();
  for (const auto& sst : sstables_) {
    auto size = fs_->FileSize(sst->path());
    if (size.ok()) total += *size;
  }
  return total;
}

}  // namespace dtl::kv
