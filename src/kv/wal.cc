#include "kv/wal.h"

#include "common/coding.h"

namespace dtl::kv {

Result<std::unique_ptr<WalWriter>> WalWriter::Create(fs::SimFileSystem* fs,
                                                     const std::string& path,
                                                     size_t sync_interval_bytes) {
  DTL_ASSIGN_OR_RETURN(auto file, fs->NewWritableFile(path));
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(file), sync_interval_bytes));
}

Status WalWriter::Append(const Cell& cell) {
  std::string payload;
  EncodeCell(cell, &payload);
  // The CRC covers the length word too: a bit flip in the length must fail
  // the checksum instead of desynchronizing the record stream.
  std::string body;
  PutFixed32(&body, static_cast<uint32_t>(payload.size()));
  body += payload;
  std::string frame;
  PutFixed32(&frame, Crc32(body.data(), body.size()));
  frame += body;
  DTL_RETURN_NOT_OK(file_->Append(frame));
  unsynced_bytes_ += frame.size();
  if (unsynced_bytes_ >= sync_interval_bytes_) return Sync();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (unsynced_bytes_ == 0) return Status::OK();
  DTL_RETURN_NOT_OK(file_->Sync());
  unsynced_bytes_ = 0;
  return Status::OK();
}

Status WalWriter::Close() { return file_->Close(); }

Status ReplayWal(const fs::SimFileSystem* fs, const std::string& path,
                 std::vector<Cell>* out) {
  auto file_result = fs->NewSequentialFile(path);
  if (!file_result.ok()) {
    if (file_result.status().IsNotFound()) return Status::OK();  // nothing to replay
    return file_result.status();
  }
  auto& file = *file_result;
  while (!file->AtEnd()) {
    std::string header;
    DTL_RETURN_NOT_OK(file->Read(8, &header));
    if (header.size() < 8) break;  // truncated tail: stop cleanly
    const uint32_t crc = DecodeFixed32(header.data());
    const uint32_t len = DecodeFixed32(header.data() + 4);
    if (len > kMaxWalRecordBytes) {
      // An implausible length is corruption, not a big record: reading it
      // would silently swallow the rest of the log as one "payload".
      return Status::Corruption("WAL record length " + std::to_string(len) +
                                " exceeds limit in " + path);
    }
    std::string payload;
    DTL_RETURN_NOT_OK(file->Read(len, &payload));
    if (payload.size() < len) break;  // truncated tail
    std::string body(header.data() + 4, 4);
    body += payload;
    if (Crc32(body.data(), body.size()) != crc) {
      return Status::Corruption("WAL record checksum mismatch in " + path);
    }
    Slice in(payload);
    Cell cell;
    DTL_RETURN_NOT_OK(DecodeCell(&in, &cell));
    out->push_back(std::move(cell));
  }
  return Status::OK();
}

}  // namespace dtl::kv
