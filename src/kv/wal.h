// Write-ahead log of the KV store. Each record is one cell framed as
// [crc32:4][len:4][payload], where the CRC covers the length word and the
// payload; the log is synced (published to the file system) at a
// configurable byte interval, mirroring HBase's group commit.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fs/filesystem.h"
#include "kv/cell.h"

namespace dtl::kv {

/// Upper bound on one encoded WAL record; a decoded length above this is
/// corruption (cells are rows, not blobs), never a legitimate record.
inline constexpr uint32_t kMaxWalRecordBytes = 64u << 20;

/// Appender for the live WAL segment.
class WalWriter {
 public:
  static Result<std::unique_ptr<WalWriter>> Create(fs::SimFileSystem* fs,
                                                   const std::string& path,
                                                   size_t sync_interval_bytes = 256 * 1024);

  /// Frames and appends one cell; syncs when the interval has elapsed.
  Status Append(const Cell& cell);

  /// Forces a sync of everything appended so far.
  Status Sync();

  Status Close();

 private:
  WalWriter(std::unique_ptr<fs::WritableFile> file, size_t sync_interval_bytes)
      : file_(std::move(file)), sync_interval_bytes_(sync_interval_bytes) {}

  std::unique_ptr<fs::WritableFile> file_;
  size_t sync_interval_bytes_;
  size_t unsynced_bytes_ = 0;
};

/// Replays a WAL segment; tolerates a truncated final record (crash tail:
/// such a record was never acknowledged), but fails with Corruption on a
/// checksum mismatch or an implausible record length anywhere in the log —
/// skipping past a damaged mid-log record would silently drop acknowledged
/// writes that follow it.
Status ReplayWal(const fs::SimFileSystem* fs, const std::string& path,
                 std::vector<Cell>* out);

}  // namespace dtl::kv
