#include "kv/sstable.h"

#include <algorithm>

#include "common/coding.h"

namespace dtl::kv {

namespace {

void EncodeIndexKey(const CellKey& key, std::string* dst) {
  PutLengthPrefixed(dst, Slice(key.row));
  PutVarint32(dst, key.qualifier);
  PutVarint64(dst, key.timestamp);
}

Status DecodeIndexKey(Slice* input, CellKey* out) {
  Slice row;
  DTL_RETURN_NOT_OK(GetLengthPrefixed(input, &row));
  out->row = row.ToString();
  DTL_RETURN_NOT_OK(GetVarint32(input, &out->qualifier));
  DTL_RETURN_NOT_OK(GetVarint64(input, &out->timestamp));
  return Status::OK();
}

}  // namespace

// --- SstWriter ----------------------------------------------------------------

Result<std::unique_ptr<SstWriter>> SstWriter::Create(fs::SimFileSystem* fs,
                                                     const std::string& path,
                                                     size_t expected_cells) {
  DTL_ASSIGN_OR_RETURN(auto file, fs->NewWritableFile(path));
  return std::unique_ptr<SstWriter>(new SstWriter(std::move(file), expected_cells));
}

Status SstWriter::Add(const Cell& cell) {
  if (finished_) return Status::IoError("add to finished SSTable");
  if (last_key_.has_value() && last_key_->Compare(cell.key) > 0) {
    return Status::InvalidArgument("SSTable cells must be added in key order");
  }
  last_key_ = cell.key;
  if (!block_first_key_.has_value()) block_first_key_ = cell.key;
  EncodeCell(cell, &block_);
  bloom_.Add(Slice(cell.key.row));
  ++cell_count_;
  if (block_.size() >= kSstBlockBytes) return FlushBlock();
  return Status::OK();
}

Status SstWriter::FlushBlock() {
  if (block_.empty()) return Status::OK();
  const uint32_t crc = Crc32(block_.data(), block_.size());
  PutFixed32(&block_, crc);
  IndexEntry entry;
  entry.first_key = *block_first_key_;
  entry.offset = offset_;
  entry.length = block_.size();  // cells + trailing CRC
  index_.push_back(std::move(entry));
  DTL_RETURN_NOT_OK(file_->Append(block_));
  offset_ += block_.size();
  block_.clear();
  block_first_key_.reset();
  return Status::OK();
}

Status SstWriter::Finish() {
  if (finished_) return Status::OK();
  DTL_RETURN_NOT_OK(FlushBlock());

  std::string index_bytes;
  PutVarint64(&index_bytes, index_.size());
  for (const IndexEntry& e : index_) {
    EncodeIndexKey(e.first_key, &index_bytes);
    PutVarint64(&index_bytes, e.offset);
    PutVarint64(&index_bytes, e.length);
  }
  const uint64_t index_off = offset_;
  DTL_RETURN_NOT_OK(file_->Append(index_bytes));
  offset_ += index_bytes.size();

  std::string bloom_bytes = bloom_.Serialize();
  const uint64_t bloom_off = offset_;
  DTL_RETURN_NOT_OK(file_->Append(bloom_bytes));
  offset_ += bloom_bytes.size();

  std::string footer;
  PutFixed64(&footer, index_off);
  PutFixed64(&footer, index_bytes.size());
  PutFixed64(&footer, bloom_off);
  PutFixed64(&footer, bloom_bytes.size());
  PutFixed64(&footer, cell_count_);
  PutFixed32(&footer, Crc32(index_bytes.data(), index_bytes.size()));
  PutFixed32(&footer, Crc32(bloom_bytes.data(), bloom_bytes.size()));
  PutFixed32(&footer, kSstMagic);
  DTL_RETURN_NOT_OK(file_->Append(footer));
  finished_ = true;
  return file_->Close();
}

// --- SstReader ----------------------------------------------------------------

Result<std::unique_ptr<SstReader>> SstReader::Open(const fs::SimFileSystem* fs,
                                                   const std::string& path) {
  DTL_ASSIGN_OR_RETURN(auto file, fs->NewRandomAccessFile(path));
  const uint64_t size = file->size();
  constexpr uint64_t kFooterSize = 8 * 5 + 4 + 4 + 4;
  if (size < kFooterSize) return Status::Corruption("file too small to be SSTable");

  std::string footer;
  DTL_RETURN_NOT_OK(file->ReadAt(size - kFooterSize, kFooterSize, &footer));
  const uint64_t index_off = DecodeFixed64(footer.data());
  const uint64_t index_len = DecodeFixed64(footer.data() + 8);
  const uint64_t bloom_off = DecodeFixed64(footer.data() + 16);
  const uint64_t bloom_len = DecodeFixed64(footer.data() + 24);
  const uint64_t cell_count = DecodeFixed64(footer.data() + 32);
  const uint32_t index_crc = DecodeFixed32(footer.data() + 40);
  const uint32_t bloom_crc = DecodeFixed32(footer.data() + 44);
  const uint32_t magic = DecodeFixed32(footer.data() + 48);
  if (magic != kSstMagic) return Status::Corruption("bad SSTable magic in " + path);
  if (index_off + index_len > size || bloom_off + bloom_len > size) {
    return Status::Corruption("bad SSTable footer offsets");
  }

  std::string index_bytes;
  DTL_RETURN_NOT_OK(file->ReadAt(index_off, index_len, &index_bytes));
  if (Crc32(index_bytes.data(), index_bytes.size()) != index_crc) {
    return Status::Corruption("SSTable index checksum mismatch in " + path);
  }
  std::string bloom_bytes;
  DTL_RETURN_NOT_OK(file->ReadAt(bloom_off, bloom_len, &bloom_bytes));
  if (Crc32(bloom_bytes.data(), bloom_bytes.size()) != bloom_crc) {
    // A damaged bloom filter is not recoverable-by-ignoring: false negatives
    // would silently hide rows from point reads.
    return Status::Corruption("SSTable bloom checksum mismatch in " + path);
  }

  auto reader = std::unique_ptr<SstReader>(new SstReader());
  reader->file_ = std::move(file);
  reader->path_ = path;
  reader->cell_count_ = cell_count;
  reader->bloom_ = BloomFilter::Deserialize(Slice(bloom_bytes));

  Slice in(index_bytes);
  uint64_t n = 0;
  DTL_RETURN_NOT_OK(GetVarint64(&in, &n));
  reader->index_.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    DTL_RETURN_NOT_OK(DecodeIndexKey(&in, &reader->index_[i].first_key));
    DTL_RETURN_NOT_OK(GetVarint64(&in, &reader->index_[i].offset));
    DTL_RETURN_NOT_OK(GetVarint64(&in, &reader->index_[i].length));
  }
  return reader;
}

bool SstReader::MayContainRow(const Slice& row) const { return bloom_.MayContain(row); }

Status SstReader::ReadBlock(size_t block_index, std::string* out) const {
  const IndexEntry& e = index_[block_index];
  DTL_RETURN_NOT_OK(file_->ReadAt(e.offset, e.length, out));
  if (out->size() != e.length || e.length < 4) {
    return Status::Corruption("SSTable block truncated in " + path_);
  }
  const uint32_t crc = DecodeFixed32(out->data() + out->size() - 4);
  out->resize(out->size() - 4);
  if (Crc32(out->data(), out->size()) != crc) {
    return Status::Corruption("SSTable block checksum mismatch in " + path_);
  }
  return Status::OK();
}

Status SstReader::GetVersions(const Slice& row, uint32_t qualifier, int max_versions,
                              std::vector<Cell>* out) const {
  if (!bloom_.MayContain(row)) return Status::OK();
  CellKey target{row.ToString(), qualifier, UINT64_MAX};  // newest version first
  Iterator it(this);
  it.Seek(target);
  int found = 0;
  for (; it.Valid() && found < max_versions; it.Next()) {
    const Cell& c = it.cell();
    if (Slice(c.key.row) != row || c.key.qualifier != qualifier) break;
    out->push_back(c);
    ++found;
  }
  return it.status();
}

// --- SstReader::Iterator --------------------------------------------------------

SstReader::Iterator::Iterator(const SstReader* reader) : reader_(reader) {}

void SstReader::Iterator::SeekToFirst() {
  status_ = Status::OK();
  valid_ = false;
  block_index_ = 0;
  if (reader_->index_.empty()) return;
  if (!LoadBlock(0)) return;
  DecodeNextInBlock();
}

void SstReader::Iterator::Seek(const CellKey& target) {
  status_ = Status::OK();
  valid_ = false;
  const auto& index = reader_->index_;
  if (index.empty()) return;
  // Last block whose first key <= target (it may contain the target).
  size_t lo = 0, hi = index.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (index[mid].first_key.Compare(target) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  size_t block = (lo == 0) ? 0 : lo - 1;
  if (!LoadBlock(block)) return;
  DecodeNextInBlock();
  while (valid_ && cell_.key.Compare(target) < 0) Next();
}

void SstReader::Iterator::Next() {
  if (!valid_) return;
  if (block_rest_.empty()) {
    if (block_index_ + 1 >= reader_->index_.size()) {
      valid_ = false;
      return;
    }
    if (!LoadBlock(block_index_ + 1)) return;
  }
  DecodeNextInBlock();
}

bool SstReader::Iterator::LoadBlock(size_t block_index) {
  block_index_ = block_index;
  Status st = reader_->ReadBlock(block_index, &block_data_);
  if (!st.ok()) {
    status_ = st;
    valid_ = false;
    return false;
  }
  block_rest_ = Slice(block_data_);
  return true;
}

void SstReader::Iterator::DecodeNextInBlock() {
  if (block_rest_.empty()) {
    valid_ = false;
    return;
  }
  Status st = DecodeCell(&block_rest_, &cell_);
  if (!st.ok()) {
    status_ = st;
    valid_ = false;
    return;
  }
  valid_ = true;
}

}  // namespace dtl::kv
