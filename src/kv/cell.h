// Cell model of the HBase-like KV store: every stored datum is a versioned
// cell addressed by (row key, column qualifier, timestamp) with a type that
// distinguishes puts from delete tombstones.
//
// Sort order matches HBase: rows ascending, qualifiers ascending, timestamps
// DESCENDING (newest version first), so a forward scan sees the latest
// version of a cell before older ones.
#pragma once

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"

namespace dtl::kv {

/// Cell kind. kDeleteRow masks every column of the row at or below its
/// timestamp; kDeleteColumn masks one qualifier.
enum class CellType : uint8_t {
  kPut = 0,
  kDeleteRow = 1,
  kDeleteColumn = 2,
};

/// Addresses one cell version.
struct CellKey {
  std::string row;
  uint32_t qualifier = 0;
  uint64_t timestamp = 0;

  /// HBase ordering: row asc, qualifier asc, timestamp desc.
  int Compare(const CellKey& other) const {
    int c = Slice(row).Compare(Slice(other.row));
    if (c != 0) return c;
    if (qualifier != other.qualifier) return qualifier < other.qualifier ? -1 : 1;
    if (timestamp != other.timestamp) return timestamp > other.timestamp ? -1 : 1;
    return 0;
  }

  bool operator==(const CellKey& other) const { return Compare(other) == 0; }
};

/// Comparator functor for SkipList / sorting.
struct CellKeyCompare {
  int operator()(const CellKey& a, const CellKey& b) const { return a.Compare(b); }
};

/// Payload of one cell version.
struct CellValue {
  CellType type = CellType::kPut;
  std::string value;  // empty for tombstones

  size_t ByteSize() const { return value.size() + 1; }
};

/// One complete cell (key + payload), the unit moved through WAL, memtable
/// flushes, SSTables, and merge iterators.
struct Cell {
  CellKey key;
  CellValue value;

  size_t ByteSize() const { return key.row.size() + 12 + value.ByteSize(); }
};

/// Serialization used by both the WAL and SSTable blocks:
/// [row len-prefixed][qualifier varint][timestamp varint][type:1][value len-prefixed].
inline void EncodeCell(const Cell& cell, std::string* dst) {
  PutLengthPrefixed(dst, Slice(cell.key.row));
  PutVarint32(dst, cell.key.qualifier);
  PutVarint64(dst, cell.key.timestamp);
  dst->push_back(static_cast<char>(cell.value.type));
  PutLengthPrefixed(dst, Slice(cell.value.value));
}

inline Status DecodeCell(Slice* input, Cell* out) {
  Slice row;
  DTL_RETURN_NOT_OK(GetLengthPrefixed(input, &row));
  out->key.row = row.ToString();
  DTL_RETURN_NOT_OK(GetVarint32(input, &out->key.qualifier));
  DTL_RETURN_NOT_OK(GetVarint64(input, &out->key.timestamp));
  if (input->empty()) return Status::Corruption("truncated cell type");
  out->value.type = static_cast<CellType>((*input)[0]);
  input->RemovePrefix(1);
  Slice value;
  DTL_RETURN_NOT_OK(GetLengthPrefixed(input, &value));
  out->value.value = value.ToString();
  return Status::OK();
}

}  // namespace dtl::kv
