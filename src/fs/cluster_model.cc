#include "fs/cluster_model.h"

#include <algorithm>
#include <cstdio>

namespace dtl::fs {

std::string IoSnapshot::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "hdfs[r=%llu w=%llu files=%llu seeks=%llu] hbase[r=%llu w=%llu rop=%llu "
                "wop=%llu]",
                static_cast<unsigned long long>(hdfs_bytes_read),
                static_cast<unsigned long long>(hdfs_bytes_written),
                static_cast<unsigned long long>(hdfs_files_created),
                static_cast<unsigned long long>(hdfs_seeks),
                static_cast<unsigned long long>(hbase_bytes_read),
                static_cast<unsigned long long>(hbase_bytes_written),
                static_cast<unsigned long long>(hbase_read_ops),
                static_cast<unsigned long long>(hbase_write_ops));
  return buf;
}

double ClusterModel::JobSeconds(const IoSnapshot& delta, int num_tasks) const {
  double io = ReadSeconds(Channel::kHdfs, delta.hdfs_bytes_read) +
              WriteSeconds(Channel::kHdfs, delta.hdfs_bytes_written) +
              ReadSeconds(Channel::kHBase, delta.hbase_bytes_read) +
              WriteSeconds(Channel::kHBase, delta.hbase_bytes_written);
  // Task launches serialize in waves over the available slots.
  double sched = 0.0;
  if (num_tasks > 0) {
    int waves = (num_tasks + config_.total_map_slots() - 1) /
                std::max(1, config_.total_map_slots());
    sched = config_.job_overhead_seconds + waves * config_.per_task_overhead_seconds;
  }
  return io + sched;
}

double ClusterModel::ScanSeconds(uint64_t bytes, int workers) const {
  double bps = std::min(config_.hdfs_read_bps,
                        static_cast<double>(std::max(1, workers)) *
                            config_.per_task_read_bps);
  return static_cast<double>(bytes) / bps;
}

std::string ClusterModel::Describe() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%d nodes x (%dm+%dr), repl=%d, chunk=%lluMB, hdfs r/w %.1f/%.1f GBps, "
                "hbase r/w %.1f/%.1f GBps",
                config_.num_nodes, config_.mappers_per_node, config_.reducers_per_node,
                config_.hdfs_replication,
                static_cast<unsigned long long>(config_.chunk_size_bytes >> 20),
                config_.hdfs_read_bps / 1e9, config_.hdfs_write_bps / 1e9,
                config_.hbase_read_bps / 1e9, config_.hbase_write_bps / 1e9);
  return buf;
}

}  // namespace dtl::fs
