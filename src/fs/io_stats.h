// I/O metering shared by the file system and the KV store. Every byte moved
// by a substrate is charged to a channel; the ClusterModel converts a metered
// delta into modelled cluster seconds so benches can report paper-scale
// arithmetic next to real wall-clock.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace dtl::fs {

/// Which substrate a byte was moved through. HBase traffic is metered
/// separately from plain HDFS traffic because the paper's cost model assigns
/// them different throughputs (C^M vs C^A in Eq. 1/2).
enum class Channel { kHdfs = 0, kHBase = 1 };

/// Point-in-time copy of the counters; subtract two to get a delta.
struct IoSnapshot {
  uint64_t hdfs_bytes_read = 0;
  uint64_t hdfs_bytes_written = 0;
  uint64_t hdfs_files_created = 0;
  uint64_t hdfs_seeks = 0;
  uint64_t hbase_bytes_read = 0;
  uint64_t hbase_bytes_written = 0;
  uint64_t hbase_read_ops = 0;
  uint64_t hbase_write_ops = 0;

  IoSnapshot operator-(const IoSnapshot& rhs) const {
    IoSnapshot d;
    d.hdfs_bytes_read = hdfs_bytes_read - rhs.hdfs_bytes_read;
    d.hdfs_bytes_written = hdfs_bytes_written - rhs.hdfs_bytes_written;
    d.hdfs_files_created = hdfs_files_created - rhs.hdfs_files_created;
    d.hdfs_seeks = hdfs_seeks - rhs.hdfs_seeks;
    d.hbase_bytes_read = hbase_bytes_read - rhs.hbase_bytes_read;
    d.hbase_bytes_written = hbase_bytes_written - rhs.hbase_bytes_written;
    d.hbase_read_ops = hbase_read_ops - rhs.hbase_read_ops;
    d.hbase_write_ops = hbase_write_ops - rhs.hbase_write_ops;
    return d;
  }

  std::string ToString() const;
};

/// Thread-safe accumulator for all substrate I/O.
class IoMeter {
 public:
  void ChargeRead(Channel c, uint64_t bytes) {
    if (c == Channel::kHdfs) {
      hdfs_bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    } else {
      hbase_bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
      hbase_read_ops_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void ChargeWrite(Channel c, uint64_t bytes) {
    if (c == Channel::kHdfs) {
      hdfs_bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    } else {
      hbase_bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
      hbase_write_ops_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void ChargeSeek() { hdfs_seeks_.fetch_add(1, std::memory_order_relaxed); }
  void ChargeFileCreate() { hdfs_files_created_.fetch_add(1, std::memory_order_relaxed); }

  IoSnapshot Snapshot() const {
    IoSnapshot s;
    s.hdfs_bytes_read = hdfs_bytes_read_.load(std::memory_order_relaxed);
    s.hdfs_bytes_written = hdfs_bytes_written_.load(std::memory_order_relaxed);
    s.hdfs_files_created = hdfs_files_created_.load(std::memory_order_relaxed);
    s.hdfs_seeks = hdfs_seeks_.load(std::memory_order_relaxed);
    s.hbase_bytes_read = hbase_bytes_read_.load(std::memory_order_relaxed);
    s.hbase_bytes_written = hbase_bytes_written_.load(std::memory_order_relaxed);
    s.hbase_read_ops = hbase_read_ops_.load(std::memory_order_relaxed);
    s.hbase_write_ops = hbase_write_ops_.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    hdfs_bytes_read_ = 0;
    hdfs_bytes_written_ = 0;
    hdfs_files_created_ = 0;
    hdfs_seeks_ = 0;
    hbase_bytes_read_ = 0;
    hbase_bytes_written_ = 0;
    hbase_read_ops_ = 0;
    hbase_write_ops_ = 0;
  }

 private:
  std::atomic<uint64_t> hdfs_bytes_read_{0};
  std::atomic<uint64_t> hdfs_bytes_written_{0};
  std::atomic<uint64_t> hdfs_files_created_{0};
  std::atomic<uint64_t> hdfs_seeks_{0};
  std::atomic<uint64_t> hbase_bytes_read_{0};
  std::atomic<uint64_t> hbase_bytes_written_{0};
  std::atomic<uint64_t> hbase_read_ops_{0};
  std::atomic<uint64_t> hbase_write_ops_{0};
};

}  // namespace dtl::fs
