// SimFileSystem: an in-memory simulation of HDFS semantics.
//
// The properties that matter for DualTable are enforced faithfully:
//   * files are append-only — there is no API for in-place mutation, so any
//     "update" of HDFS-resident data must rewrite whole files (the root cause
//     of Hive's INSERT OVERWRITE cost that the paper attacks);
//   * files are divided into fixed-size chunks used for MapReduce splits;
//   * streaming (sequential) reads are the fast path; positioned reads are
//     supported (HDFS allows seek-on-read) and metered as seeks;
//   * a namespace (the namenode) maps paths to file metadata;
//   * every byte moved is charged to an IoMeter channel so the ClusterModel
//     can convert runs into modelled cluster seconds.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "fs/fault_injection.h"
#include "fs/io_stats.h"

namespace dtl::fs {

class SimFileSystem;

/// Append-only writer handle; the file becomes visible to readers on Close
/// (HDFS visibility-on-close semantics).
///
/// The mutating surface is exactly {Append, Sync, Close} — the paper's core
/// storage constraint (no in-place update on HDFS). scripts/lint.py rule
/// `append-only-fs` rejects any additional mutator declared here and any
/// positional-write primitive (WriteAt/Truncate/pwrite) named in the tree.
class WritableFile {
 public:
  ~WritableFile();

  Status Append(const Slice& data);
  /// Publishes everything appended so far to readers while keeping the file
  /// open for further appends (hflush semantics; used by the KV store's WAL).
  Status Sync();
  /// Finalizes the file; further Appends fail. Idempotent.
  Status Close();

  uint64_t bytes_written() const { return total_appended_; }

 private:
  friend class SimFileSystem;
  WritableFile(SimFileSystem* fs, std::string path) : fs_(fs), path_(std::move(path)) {}

  SimFileSystem* fs_;
  std::string path_;
  std::string buffer_;
  uint64_t total_appended_ = 0;
  uint64_t synced_bytes_ = 0;
  bool closed_ = false;
};

/// Streaming reader over a closed file.
class SequentialFile {
 public:
  /// Reads up to n bytes into *out (cleared first); short read at EOF.
  Status Read(size_t n, std::string* out);
  /// Skips forward without charging read bytes.
  Status Skip(uint64_t n);
  bool AtEnd() const;
  uint64_t offset() const { return offset_; }

 private:
  friend class SimFileSystem;
  SequentialFile(std::shared_ptr<const std::string> data, IoMeter* meter, Channel channel)
      : data_(std::move(data)), meter_(meter), channel_(channel) {}

  std::shared_ptr<const std::string> data_;
  IoMeter* meter_;
  Channel channel_;
  uint64_t offset_ = 0;
};

/// Positioned reader over a closed file. Each ReadAt is metered as one seek
/// plus the bytes read.
class RandomAccessFile {
 public:
  Status ReadAt(uint64_t offset, size_t n, std::string* out) const;
  uint64_t size() const { return data_->size(); }

 private:
  friend class SimFileSystem;
  RandomAccessFile(std::shared_ptr<const std::string> data, IoMeter* meter, Channel channel)
      : data_(std::move(data)), meter_(meter), channel_(channel) {}

  std::shared_ptr<const std::string> data_;
  IoMeter* meter_;
  Channel channel_;
};

/// Options controlling the simulated cluster file system.
struct FileSystemOptions {
  uint64_t chunk_size_bytes = 8ull << 20;  // laptop-scale default; 64 MB on paper scale
  /// Paths under this prefix are charged to the HBase channel (the KV store
  /// hosts its WAL and SSTables here, mirroring HBase-on-HDFS).
  std::string hbase_prefix = "/hbase/";
};

/// The simulated namenode + datanodes. Thread-safe.
class SimFileSystem {
 public:
  explicit SimFileSystem(FileSystemOptions options = FileSystemOptions());

  // -- namespace operations (namenode) --
  Status CreateDir(const std::string& path);
  Result<std::vector<std::string>> ListDir(const std::string& path) const;
  bool Exists(const std::string& path) const;
  Result<uint64_t> FileSize(const std::string& path) const;
  Status Delete(const std::string& path);
  /// Removes a directory and every file under it.
  Status DeleteRecursively(const std::string& path);
  Status Rename(const std::string& from, const std::string& to);

  // -- data operations (datanodes) --
  Result<std::unique_ptr<WritableFile>> NewWritableFile(const std::string& path);
  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(const std::string& path) const;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) const;

  /// Number of chunk-aligned splits a file would produce in a MapReduce job.
  Result<int> NumChunks(const std::string& path) const;

  IoMeter* meter() { return &meter_; }
  const FileSystemOptions& options() const { return options_; }

  /// Total bytes stored across all files (unreplicated logical size).
  uint64_t TotalBytesStored() const;

  // -- fault injection (crash-consistency test harness) --

  /// Installs a fault policy; replaces any previous policy and resets the
  /// matching-op counter and crash state.
  void SetFaultPolicy(FaultPolicy policy);
  /// Removes the policy and clears the crashed state — the harness's
  /// "process restart". Synced data survives; nothing else changes.
  void ClearFaultPolicy();
  /// True once a kCrash policy has fired (until ClearFaultPolicy).
  bool HasCrashed() const;
  /// Total mutating operations observed since construction, counted whether
  /// or not a policy is installed. Sweeps size their crash-point range by
  /// running the workload once fault-free and reading this.
  uint64_t MutatingOpCount() const;
  /// Flips bits in a stored file: byte at `offset` is XORed with `xor_mask`.
  /// Models silent media corruption; test-only.
  Status CorruptFile(const std::string& path, uint64_t offset, uint8_t xor_mask);

 private:
  friend class WritableFile;

  Channel ChannelFor(const std::string& path) const;
  /// Counts one mutating op against the installed policy; returns the
  /// injected error when the policy fires (or has already crashed the file
  /// system). For kSync crash triggers, *torn_fraction is set to the
  /// policy's tear_fraction so CommitFileDelta can publish a partial delta.
  Status CheckFault(FaultOp op, const std::string& path,
                    double* torn_fraction = nullptr);
  /// Publishes `contents` as the file body, charging only `new_bytes` (the
  /// suffix not covered by a previous sync). Updates *synced_bytes.
  Status CommitFileDelta(const std::string& path, const std::string& contents,
                         uint64_t new_bytes, uint64_t* synced_bytes);

  struct FileNode {
    std::shared_ptr<const std::string> data;
  };

  FileSystemOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, FileNode> files_;
  std::map<std::string, bool> dirs_;
  mutable IoMeter meter_;

  /// Fault state lives under its own mutex: CheckFault runs at operation
  /// entry, before mu_ is taken, so the two never nest.
  mutable std::mutex fault_mu_;
  std::optional<FaultPolicy> fault_policy_;
  uint64_t fault_matching_ops_ = 0;
  uint64_t mutating_ops_ = 0;
  bool fault_fired_ = false;
  bool crashed_ = false;
};

/// Joins two path segments with exactly one '/'.
std::string JoinPath(const std::string& dir, const std::string& name);

}  // namespace dtl::fs
