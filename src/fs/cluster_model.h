// Converts metered substrate I/O into modelled cluster seconds. Default
// parameters follow the worked example in the paper's Section IV: aggregate
// HDFS write 1 GB/s, HBase read 0.5 GB/s, HBase write 0.8 GB/s; and the
// evaluation cluster: 8-core nodes, 6 mappers + 2 reducers per worker,
// 3 HDFS replicas, 64 MB chunks.
#pragma once

#include <cstdint>
#include <string>

#include "fs/io_stats.h"

namespace dtl::fs {

/// Static description of the modelled cluster.
struct ClusterConfig {
  int num_nodes = 10;
  int mappers_per_node = 6;
  int reducers_per_node = 2;
  int hdfs_replication = 3;
  uint64_t chunk_size_bytes = 64ull << 20;

  // Aggregate cluster throughputs in bytes/second (paper Section IV example).
  double hdfs_read_bps = 2.0e9;   // streaming batch read across all mappers
  double hdfs_write_bps = 1.0e9;  // "HDFS writes using multiple Map tasks ... 1GB/s"
  double hbase_read_bps = 0.5e9;  // "HBase reading ... 0.5GB/s"
  double hbase_write_bps = 0.8e9;  // "HBase ... writing ... 0.8GB/s"

  // Fixed MapReduce job scheduling overhead (job setup, task launch).
  double job_overhead_seconds = 15.0;
  double per_task_overhead_seconds = 0.5;

  // One scan task streams master data at this rate; a W-worker scan scales
  // linearly in W until the aggregate HDFS read channel saturates (2 GB/s
  // over 60 map slots ≈ 33 MB/s per slot).
  double per_task_read_bps = 33.0e6;

  int total_map_slots() const { return num_nodes * mappers_per_node; }
};

/// Translates an I/O delta into modelled seconds on the configured cluster.
class ClusterModel {
 public:
  explicit ClusterModel(ClusterConfig config = ClusterConfig()) : config_(config) {}

  const ClusterConfig& config() const { return config_; }
  ClusterConfig* mutable_config() { return &config_; }

  /// Seconds to move `bytes` through a channel in the given direction.
  double ReadSeconds(Channel c, uint64_t bytes) const {
    return static_cast<double>(bytes) /
           (c == Channel::kHdfs ? config_.hdfs_read_bps : config_.hbase_read_bps);
  }
  double WriteSeconds(Channel c, uint64_t bytes) const {
    double effective = static_cast<double>(bytes);
    if (c == Channel::kHdfs) effective *= config_.hdfs_replication;
    return effective / (c == Channel::kHdfs ? config_.hdfs_write_bps : config_.hbase_write_bps);
  }

  /// Modelled seconds for one MapReduce-style job that performed the given
  /// I/O delta, including scheduling overhead for `num_tasks` tasks.
  double JobSeconds(const IoSnapshot& delta, int num_tasks = 0) const;

  /// Modelled seconds for a `workers`-wide morsel scan that read `bytes` of
  /// encoded master data: throughput is workers × per_task_read_bps, capped
  /// at the aggregate HDFS read rate. No fixed overhead — the morsel workers
  /// are pool threads, not scheduled MapReduce tasks.
  double ScanSeconds(uint64_t bytes, int workers) const;

  std::string Describe() const;

 private:
  ClusterConfig config_;
};

}  // namespace dtl::fs
