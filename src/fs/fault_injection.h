// Fault-injection controls for SimFileSystem: the crash-consistency test
// harness installs a FaultPolicy to make the simulated HDFS fail or "crash"
// at a chosen mutating operation, and to tear or bit-flip stored bytes.
//
// The model matches what real HDFS clients observe:
//   * an IO error makes one operation fail and the file system keeps going;
//   * a crash makes the triggering operation and every later mutating
//     operation fail until the harness "restarts" the process by clearing
//     the policy — data synced before the crash survives, unsynced appends
//     are lost with the writer, and the commit that was in flight may
//     publish only a prefix of its delta (a torn write);
//   * bit flips model silent media corruption underneath intact metadata.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dtl::fs {

/// Mutating operations the policy can target. Read paths are never failed:
/// a crashed process loses writers, not previously published bytes.
enum class FaultOp {
  kCreate,  // NewWritableFile
  kAppend,  // WritableFile::Append
  kSync,    // WritableFile::Sync / Close (the publication commit)
  kRename,  // Rename
  kDelete,  // Delete / DeleteRecursively
};

const char* FaultOpName(FaultOp op);

enum class FaultMode {
  /// The triggering operation returns IOError once; later ops succeed.
  kErrorOnce,
  /// Simulated process crash: the triggering operation and all subsequent
  /// mutating operations fail until ClearFaultPolicy() ("restart"). When
  /// the trigger lands on a Sync/Close commit, only `tear_fraction` of the
  /// un-synced suffix becomes durable.
  kCrash,
};

struct FaultPolicy {
  FaultMode mode = FaultMode::kCrash;
  /// Substring the operation's path must contain to count toward the
  /// trigger; empty matches every path.
  std::string path_substring;
  /// Operations that count toward the trigger; empty means all mutating ops.
  std::vector<FaultOp> ops;
  /// Fires on the Nth (1-based) matching mutating operation after
  /// installation.
  uint64_t trigger_after_ops = 1;
  /// Fraction (0..1] of the in-flight commit's un-synced suffix that still
  /// reaches "disk" when a kCrash trigger lands on a kSync operation. 0
  /// models a clean tail loss; anything else models a torn write.
  double tear_fraction = 0.0;

  bool Matches(FaultOp op, const std::string& path) const;
};

}  // namespace dtl::fs
