#include "fs/filesystem.h"

#include <algorithm>

namespace dtl::fs {

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

// --- WritableFile -----------------------------------------------------------

WritableFile::~WritableFile() {
  // Dropping an unclosed writer discards the data, like an HDFS lease abort.
}

Status WritableFile::Append(const Slice& data) {
  if (closed_) return Status::IoError("append to closed file " + path_);
  buffer_.append(data.data(), data.size());
  total_appended_ += data.size();
  return Status::OK();
}

Status WritableFile::Sync() {
  if (closed_) return Status::IoError("sync on closed file " + path_);
  // Only the newly appended suffix is charged; earlier bytes were charged by
  // previous syncs.
  return fs_->CommitFileDelta(path_, buffer_, buffer_.size() - synced_bytes_,
                              &synced_bytes_);
}

Status WritableFile::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  uint64_t unsynced = buffer_.size() - synced_bytes_;
  Status st = fs_->CommitFileDelta(path_, buffer_, unsynced, &synced_bytes_);
  buffer_.clear();
  return st;
}

// --- SequentialFile ----------------------------------------------------------

Status SequentialFile::Read(size_t n, std::string* out) {
  out->clear();
  if (offset_ >= data_->size()) return Status::OK();
  size_t avail = data_->size() - offset_;
  size_t take = std::min(n, avail);
  out->assign(data_->data() + offset_, take);
  offset_ += take;
  meter_->ChargeRead(channel_, take);
  return Status::OK();
}

Status SequentialFile::Skip(uint64_t n) {
  if (offset_ + n > data_->size()) return Status::OutOfRange("skip past end of file");
  offset_ += n;
  return Status::OK();
}

bool SequentialFile::AtEnd() const { return offset_ >= data_->size(); }

// --- RandomAccessFile --------------------------------------------------------

Status RandomAccessFile::ReadAt(uint64_t offset, size_t n, std::string* out) const {
  out->clear();
  if (offset > data_->size()) return Status::OutOfRange("read past end of file");
  size_t take = std::min<uint64_t>(n, data_->size() - offset);
  out->assign(data_->data() + offset, take);
  meter_->ChargeSeek();
  meter_->ChargeRead(channel_, take);
  return Status::OK();
}

// --- SimFileSystem -----------------------------------------------------------

SimFileSystem::SimFileSystem(FileSystemOptions options) : options_(std::move(options)) {
  dirs_["/"] = true;
}

Channel SimFileSystem::ChannelFor(const std::string& path) const {
  if (!options_.hbase_prefix.empty() &&
      path.compare(0, options_.hbase_prefix.size(), options_.hbase_prefix) == 0) {
    return Channel::kHBase;
  }
  return Channel::kHdfs;
}

Status SimFileSystem::CreateDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  dirs_[path] = true;
  return Status::OK();
}

Result<std::vector<std::string>> SimFileSystem::ListDir(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string prefix = path;
  if (prefix.empty() || prefix.back() != '/') prefix += '/';
  std::vector<std::string> names;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    const std::string& p = it->first;
    if (p.compare(0, prefix.size(), prefix) != 0) break;
    // Only direct children.
    if (p.find('/', prefix.size()) == std::string::npos) {
      names.push_back(p.substr(prefix.size()));
    }
  }
  return names;
}

bool SimFileSystem::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0 || dirs_.count(path) > 0;
}

Result<uint64_t> SimFileSystem::FileSize(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return static_cast<uint64_t>(it->second.data->size());
}

Status SimFileSystem::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0 && dirs_.erase(path) == 0) {
    return Status::NotFound("no such file: " + path);
  }
  return Status::OK();
}

Status SimFileSystem::DeleteRecursively(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string prefix = path;
  if (prefix.empty() || prefix.back() != '/') prefix += '/';
  for (auto it = files_.lower_bound(prefix); it != files_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    it = files_.erase(it);
  }
  for (auto it = dirs_.lower_bound(prefix); it != dirs_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    it = dirs_.erase(it);
  }
  dirs_.erase(path);
  files_.erase(path);
  return Status::OK();
}

Status SimFileSystem::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::OK();
}

Result<std::unique_ptr<WritableFile>> SimFileSystem::NewWritableFile(
    const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must be absolute: " + path);
  }
  return std::unique_ptr<WritableFile>(new WritableFile(this, path));
}

Status SimFileSystem::CommitFileDelta(const std::string& path,
                                      const std::string& contents, uint64_t new_bytes,
                                      uint64_t* synced_bytes) {
  Channel channel = ChannelFor(path);
  meter_.ChargeWrite(channel, new_bytes);
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.find(path) == files_.end()) meter_.ChargeFileCreate();
  files_[path] = FileNode{std::make_shared<const std::string>(contents)};
  *synced_bytes = contents.size();
  return Status::OK();
}

Result<std::unique_ptr<SequentialFile>> SimFileSystem::NewSequentialFile(
    const std::string& path) const {
  std::shared_ptr<const std::string> data;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("no such file: " + path);
    data = it->second.data;
  }
  return std::unique_ptr<SequentialFile>(
      new SequentialFile(std::move(data), &meter_, ChannelFor(path)));
}

Result<std::unique_ptr<RandomAccessFile>> SimFileSystem::NewRandomAccessFile(
    const std::string& path) const {
  std::shared_ptr<const std::string> data;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("no such file: " + path);
    data = it->second.data;
  }
  return std::unique_ptr<RandomAccessFile>(
      new RandomAccessFile(std::move(data), &meter_, ChannelFor(path)));
}

Result<int> SimFileSystem::NumChunks(const std::string& path) const {
  DTL_ASSIGN_OR_RETURN(uint64_t size, FileSize(path));
  if (size == 0) return 1;
  return static_cast<int>((size + options_.chunk_size_bytes - 1) / options_.chunk_size_bytes);
}

uint64_t SimFileSystem::TotalBytesStored() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [path, node] : files_) total += node.data->size();
  return total;
}

}  // namespace dtl::fs
