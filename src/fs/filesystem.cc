#include "fs/filesystem.h"

#include <algorithm>

namespace dtl::fs {

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

// --- fault injection ---------------------------------------------------------

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kCreate: return "create";
    case FaultOp::kAppend: return "append";
    case FaultOp::kSync: return "sync";
    case FaultOp::kRename: return "rename";
    case FaultOp::kDelete: return "delete";
  }
  return "unknown";
}

bool FaultPolicy::Matches(FaultOp op, const std::string& path) const {
  if (!ops.empty() && std::find(ops.begin(), ops.end(), op) == ops.end()) return false;
  if (!path_substring.empty() && path.find(path_substring) == std::string::npos) {
    return false;
  }
  return true;
}

void SimFileSystem::SetFaultPolicy(FaultPolicy policy) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  fault_policy_ = std::move(policy);
  fault_matching_ops_ = 0;
  fault_fired_ = false;
  crashed_ = false;
}

void SimFileSystem::ClearFaultPolicy() {
  std::lock_guard<std::mutex> lock(fault_mu_);
  fault_policy_.reset();
  fault_matching_ops_ = 0;
  fault_fired_ = false;
  crashed_ = false;
}

bool SimFileSystem::HasCrashed() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return crashed_;
}

uint64_t SimFileSystem::MutatingOpCount() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return mutating_ops_;
}

Status SimFileSystem::CheckFault(FaultOp op, const std::string& path,
                                 double* torn_fraction) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  ++mutating_ops_;
  if (crashed_) {
    return Status::IoError("simulated crash: file system is down (" +
                           std::string(FaultOpName(op)) + " " + path + ")");
  }
  if (!fault_policy_.has_value() || fault_fired_) return Status::OK();
  if (!fault_policy_->Matches(op, path)) return Status::OK();
  if (++fault_matching_ops_ < fault_policy_->trigger_after_ops) return Status::OK();
  fault_fired_ = true;
  if (fault_policy_->mode == FaultMode::kCrash) {
    crashed_ = true;
    if (op == FaultOp::kSync && torn_fraction != nullptr) {
      *torn_fraction = fault_policy_->tear_fraction;
    }
    return Status::IoError("simulated crash during " + std::string(FaultOpName(op)) +
                           " of " + path);
  }
  return Status::IoError("injected IO error during " + std::string(FaultOpName(op)) +
                         " of " + path);
}

Status SimFileSystem::CorruptFile(const std::string& path, uint64_t offset,
                                  uint8_t xor_mask) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  if (offset >= it->second.data->size()) {
    return Status::OutOfRange("corruption offset past end of " + path);
  }
  std::string mutated = *it->second.data;
  mutated[offset] = static_cast<char>(mutated[offset] ^ xor_mask);
  it->second.data = std::make_shared<const std::string>(std::move(mutated));
  return Status::OK();
}

// --- WritableFile -----------------------------------------------------------

WritableFile::~WritableFile() {
  // Dropping an unclosed writer discards the data, like an HDFS lease abort.
}

Status WritableFile::Append(const Slice& data) {
  if (closed_) return Status::IoError("append to closed file " + path_);
  DTL_RETURN_NOT_OK(fs_->CheckFault(FaultOp::kAppend, path_));
  buffer_.append(data.data(), data.size());
  total_appended_ += data.size();
  return Status::OK();
}

Status WritableFile::Sync() {
  if (closed_) return Status::IoError("sync on closed file " + path_);
  // Only the newly appended suffix is charged; earlier bytes were charged by
  // previous syncs.
  return fs_->CommitFileDelta(path_, buffer_, buffer_.size() - synced_bytes_,
                              &synced_bytes_);
}

Status WritableFile::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  uint64_t unsynced = buffer_.size() - synced_bytes_;
  Status st = fs_->CommitFileDelta(path_, buffer_, unsynced, &synced_bytes_);
  buffer_.clear();
  return st;
}

// --- SequentialFile ----------------------------------------------------------

Status SequentialFile::Read(size_t n, std::string* out) {
  out->clear();
  if (offset_ >= data_->size()) return Status::OK();
  size_t avail = data_->size() - offset_;
  size_t take = std::min(n, avail);
  out->assign(data_->data() + offset_, take);
  offset_ += take;
  meter_->ChargeRead(channel_, take);
  return Status::OK();
}

Status SequentialFile::Skip(uint64_t n) {
  if (offset_ + n > data_->size()) return Status::OutOfRange("skip past end of file");
  offset_ += n;
  return Status::OK();
}

bool SequentialFile::AtEnd() const { return offset_ >= data_->size(); }

// --- RandomAccessFile --------------------------------------------------------

Status RandomAccessFile::ReadAt(uint64_t offset, size_t n, std::string* out) const {
  out->clear();
  if (offset > data_->size()) return Status::OutOfRange("read past end of file");
  size_t take = std::min<uint64_t>(n, data_->size() - offset);
  out->assign(data_->data() + offset, take);
  meter_->ChargeSeek();
  meter_->ChargeRead(channel_, take);
  return Status::OK();
}

// --- SimFileSystem -----------------------------------------------------------

SimFileSystem::SimFileSystem(FileSystemOptions options) : options_(std::move(options)) {
  dirs_["/"] = true;
}

Channel SimFileSystem::ChannelFor(const std::string& path) const {
  if (!options_.hbase_prefix.empty() &&
      path.compare(0, options_.hbase_prefix.size(), options_.hbase_prefix) == 0) {
    return Channel::kHBase;
  }
  return Channel::kHdfs;
}

Status SimFileSystem::CreateDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  dirs_[path] = true;
  return Status::OK();
}

Result<std::vector<std::string>> SimFileSystem::ListDir(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string prefix = path;
  if (prefix.empty() || prefix.back() != '/') prefix += '/';
  std::vector<std::string> names;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    const std::string& p = it->first;
    if (p.compare(0, prefix.size(), prefix) != 0) break;
    // Only direct children.
    if (p.find('/', prefix.size()) == std::string::npos) {
      names.push_back(p.substr(prefix.size()));
    }
  }
  return names;
}

bool SimFileSystem::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0 || dirs_.count(path) > 0;
}

Result<uint64_t> SimFileSystem::FileSize(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return static_cast<uint64_t>(it->second.data->size());
}

Status SimFileSystem::Delete(const std::string& path) {
  DTL_RETURN_NOT_OK(CheckFault(FaultOp::kDelete, path));
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0 && dirs_.erase(path) == 0) {
    return Status::NotFound("no such file: " + path);
  }
  return Status::OK();
}

Status SimFileSystem::DeleteRecursively(const std::string& path) {
  DTL_RETURN_NOT_OK(CheckFault(FaultOp::kDelete, path));
  std::lock_guard<std::mutex> lock(mu_);
  std::string prefix = path;
  if (prefix.empty() || prefix.back() != '/') prefix += '/';
  for (auto it = files_.lower_bound(prefix); it != files_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    it = files_.erase(it);
  }
  for (auto it = dirs_.lower_bound(prefix); it != dirs_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    it = dirs_.erase(it);
  }
  dirs_.erase(path);
  files_.erase(path);
  return Status::OK();
}

Status SimFileSystem::Rename(const std::string& from, const std::string& to) {
  DTL_RETURN_NOT_OK(CheckFault(FaultOp::kRename, from));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("no such file: " + from);
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Status::OK();
}

Result<std::unique_ptr<WritableFile>> SimFileSystem::NewWritableFile(
    const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must be absolute: " + path);
  }
  DTL_RETURN_NOT_OK(CheckFault(FaultOp::kCreate, path));
  return std::unique_ptr<WritableFile>(new WritableFile(this, path));
}

Status SimFileSystem::CommitFileDelta(const std::string& path,
                                      const std::string& contents, uint64_t new_bytes,
                                      uint64_t* synced_bytes) {
  double torn_fraction = -1.0;
  Status fault = CheckFault(FaultOp::kSync, path, &torn_fraction);
  if (!fault.ok()) {
    // A crash that lands on the commit itself may still get a prefix of the
    // un-synced delta to "disk" (a torn write). *synced_bytes is left
    // untouched: the writer never learns the data landed.
    if (torn_fraction > 0.0) {
      const uint64_t previously_synced = contents.size() - new_bytes;
      const uint64_t keep =
          static_cast<uint64_t>(static_cast<double>(new_bytes) * torn_fraction);
      if (previously_synced + keep > 0) {
        std::lock_guard<std::mutex> lock(mu_);
        if (files_.find(path) == files_.end()) meter_.ChargeFileCreate();
        files_[path] = FileNode{
            std::make_shared<const std::string>(contents.substr(0, previously_synced + keep))};
      }
    }
    return fault;
  }
  Channel channel = ChannelFor(path);
  meter_.ChargeWrite(channel, new_bytes);
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.find(path) == files_.end()) meter_.ChargeFileCreate();
  files_[path] = FileNode{std::make_shared<const std::string>(contents)};
  *synced_bytes = contents.size();
  return Status::OK();
}

Result<std::unique_ptr<SequentialFile>> SimFileSystem::NewSequentialFile(
    const std::string& path) const {
  std::shared_ptr<const std::string> data;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("no such file: " + path);
    data = it->second.data;
  }
  return std::unique_ptr<SequentialFile>(
      new SequentialFile(std::move(data), &meter_, ChannelFor(path)));
}

Result<std::unique_ptr<RandomAccessFile>> SimFileSystem::NewRandomAccessFile(
    const std::string& path) const {
  std::shared_ptr<const std::string> data;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("no such file: " + path);
    data = it->second.data;
  }
  return std::unique_ptr<RandomAccessFile>(
      new RandomAccessFile(std::move(data), &meter_, ChannelFor(path)));
}

Result<int> SimFileSystem::NumChunks(const std::string& path) const {
  DTL_ASSIGN_OR_RETURN(uint64_t size, FileSize(path));
  if (size == 0) return 1;
  return static_cast<int>((size + options_.chunk_size_bytes - 1) / options_.chunk_size_bytes);
}

uint64_t SimFileSystem::TotalBytesStored() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [path, node] : files_) total += node.data->size();
  return total;
}

}  // namespace dtl::fs
