#include "workload/tpch_gen.h"

#include <cstdio>
#include <memory>
#include <unordered_set>

#include "common/random.h"

namespace dtl::workload {

namespace {

const char* kShipModes[] = {"MAIL", "SHIP", "AIR", "RAIL", "TRUCK", "FOB", "REG AIR"};
const char* kShipInstructs[] = {"DELIVER IN PERSON", "COLLECT COD", "TAKE BACK RETURN",
                                "NONE"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                             "5-LOW"};
const char* kStatuses[] = {"O", "F", "P"};

}  // namespace

Schema LineitemSchema() {
  return Schema({
      {"l_orderkey", DataType::kInt64},
      {"l_partkey", DataType::kInt64},
      {"l_suppkey", DataType::kInt64},
      {"l_linenumber", DataType::kInt64},
      {"l_quantity", DataType::kDouble},
      {"l_extendedprice", DataType::kDouble},
      {"l_discount", DataType::kDouble},
      {"l_tax", DataType::kDouble},
      {"l_returnflag", DataType::kString},
      {"l_linestatus", DataType::kString},
      {"l_shipdate", DataType::kDate},
      {"l_commitdate", DataType::kDate},
      {"l_receiptdate", DataType::kDate},
      {"l_shipinstruct", DataType::kString},
      {"l_shipmode", DataType::kString},
      {"l_comment", DataType::kString},
  });
}

Schema OrdersSchema() {
  return Schema({
      {"o_orderkey", DataType::kInt64},
      {"o_custkey", DataType::kInt64},
      {"o_orderstatus", DataType::kString},
      {"o_totalprice", DataType::kDouble},
      {"o_orderdate", DataType::kDate},
      {"o_orderpriority", DataType::kString},
      {"o_clerk", DataType::kString},
      {"o_shippriority", DataType::kInt64},
      {"o_comment", DataType::kString},
  });
}

Status GenerateLineitem(table::StorageTable* table, const TpchConfig& config) {
  Random rng(config.seed);
  const uint64_t total = config.lineitem_rows();
  const uint64_t orders = std::max<uint64_t>(1, config.orders_rows());
  std::vector<Row> batch;
  batch.reserve(config.batch_rows);
  uint64_t order_key = 0;
  int line_number = 0;
  int lines_in_order = 0;
  for (uint64_t i = 0; i < total; ++i) {
    if (line_number >= lines_in_order) {
      // Next order: 1-7 lines, orderkey spread over the orders key space.
      order_key = 1 + rng.Uniform(orders * 4);
      lines_in_order = 1 + static_cast<int>(rng.Uniform(7));
      line_number = 0;
    }
    ++line_number;
    const int64_t ship = kDateEpoch + static_cast<int64_t>(rng.Uniform(kDateSpanDays));
    const int64_t commit = ship + rng.UniformRange(-30, 60);
    const int64_t receipt = ship + rng.UniformRange(1, 30);
    Row row;
    row.reserve(16);
    row.push_back(Value::Int64(static_cast<int64_t>(order_key)));
    row.push_back(Value::Int64(rng.UniformRange(1, 200000)));
    row.push_back(Value::Int64(rng.UniformRange(1, 10000)));
    row.push_back(Value::Int64(line_number));
    row.push_back(Value::Double(1.0 + static_cast<double>(rng.Uniform(50))));
    row.push_back(Value::Double(900.0 + rng.NextDouble() * 104000.0));
    row.push_back(Value::Double(static_cast<double>(rng.Uniform(11)) / 100.0));
    row.push_back(Value::Double(static_cast<double>(rng.Uniform(9)) / 100.0));
    row.push_back(Value::String(rng.Bernoulli(0.25) ? "R" : (rng.Bernoulli(0.5) ? "A" : "N")));
    row.push_back(Value::String(rng.Bernoulli(0.5) ? "O" : "F"));
    row.push_back(Value::Date(ship));
    row.push_back(Value::Date(commit));
    row.push_back(Value::Date(receipt));
    row.push_back(Value::String(kShipInstructs[rng.Uniform(4)]));
    row.push_back(Value::String(kShipModes[rng.Uniform(7)]));
    row.push_back(Value::String("lineitem comment " + rng.NextString(16)));
    batch.push_back(std::move(row));
    if (batch.size() >= config.batch_rows) {
      DTL_RETURN_NOT_OK(table->InsertRows(batch));
      batch.clear();
    }
  }
  if (!batch.empty()) DTL_RETURN_NOT_OK(table->InsertRows(batch));
  return Status::OK();
}

Status GenerateOrders(table::StorageTable* table, const TpchConfig& config) {
  Random rng(config.seed + 1);
  const uint64_t total = config.orders_rows();
  std::vector<Row> batch;
  batch.reserve(config.batch_rows);
  for (uint64_t i = 0; i < total; ++i) {
    Row row;
    row.reserve(9);
    row.push_back(Value::Int64(static_cast<int64_t>(1 + i * 4 + rng.Uniform(4))));
    row.push_back(Value::Int64(rng.UniformRange(1, 150000)));
    row.push_back(Value::String(kStatuses[rng.Uniform(3)]));
    row.push_back(Value::Double(800.0 + rng.NextDouble() * 500000.0));
    row.push_back(Value::Date(kDateEpoch + static_cast<int64_t>(rng.Uniform(kDateSpanDays))));
    row.push_back(Value::String(kPriorities[rng.Uniform(5)]));
    row.push_back(Value::String("Clerk#" + std::to_string(rng.Uniform(1000))));
    row.push_back(Value::Int64(0));
    row.push_back(Value::String("orders comment " + rng.NextString(12)));
    batch.push_back(std::move(row));
    if (batch.size() >= config.batch_rows) {
      DTL_RETURN_NOT_OK(table->InsertRows(batch));
      batch.clear();
    }
  }
  if (!batch.empty()) DTL_RETURN_NOT_OK(table->InsertRows(batch));
  return Status::OK();
}

std::string QueryA(const std::string& t) {
  const int64_t cutoff = kDateEpoch + kDateSpanDays - 90;
  return "SELECT l_returnflag, l_linestatus, "
         "SUM(l_quantity) sum_qty, SUM(l_extendedprice) sum_base_price, "
         "SUM(l_extendedprice * (1 - l_discount)) sum_disc_price, "
         "SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) sum_charge, "
         "AVG(l_quantity) avg_qty, AVG(l_extendedprice) avg_price, "
         "AVG(l_discount) avg_disc, COUNT(*) count_order "
         "FROM " + t + " WHERE l_shipdate <= " + std::to_string(cutoff) +
         " GROUP BY l_returnflag, l_linestatus "
         "ORDER BY l_returnflag, l_linestatus";
}

std::string QueryB(const std::string& lineitem, const std::string& orders) {
  const int64_t from = kDateEpoch + 365;
  const int64_t to = from + 365;
  return "SELECT l_shipmode, "
         "SUM(IF(o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH', 1, 0)) "
         "high_line_count, "
         "SUM(IF(o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH', 1, 0)) "
         "low_line_count "
         "FROM " + orders + " o JOIN " + lineitem + " l ON o.o_orderkey = l.l_orderkey "
         "WHERE l.l_shipmode IN ('MAIL', 'SHIP') "
         "AND l.l_commitdate < l.l_receiptdate "
         "AND l.l_shipdate < l.l_commitdate "
         "AND l.l_receiptdate >= " + std::to_string(from) +
         " AND l.l_receiptdate < " + std::to_string(to) +
         " GROUP BY l_shipmode ORDER BY l_shipmode";
}

std::string QueryC(const std::string& t) {
  return "SELECT COUNT(*) FROM " + t;
}

std::string LineitemRatioPredicate(double ratio) {
  const int64_t cutoff =
      kDateEpoch + static_cast<int64_t>(ratio * static_cast<double>(kDateSpanDays));
  return "l_shipdate < " + std::to_string(cutoff);
}

std::string DmlA(const std::string& t) {
  // Ship dates are uniform, so the first 5% of the span hits ~5% of rows.
  return "UPDATE " + t + " SET l_discount = 0.99 WHERE " + LineitemRatioPredicate(0.05) +
         " WITH RATIO 0.05";
}

std::string DmlB(const std::string& t) {
  return "DELETE FROM " + t + " WHERE " + LineitemRatioPredicate(0.02) +
         " WITH RATIO 0.02";
}

Result<table::DmlResult> RunDmlC(table::StorageTable* orders_table,
                                 table::StorageTable* lineitem_table) {
  // Join side: collect the order keys of lineitems shipped in the first 16%
  // of the date span whose orders should be re-prioritized.
  const int64_t cutoff = kDateEpoch + static_cast<int64_t>(0.16 * kDateSpanDays);
  std::unordered_set<int64_t> keys;
  {
    table::ScanSpec spec;
    spec.projection = {lineitem::kOrderKey};
    spec.predicate_columns = {lineitem::kShipDate};
    spec.predicate = [cutoff](const Row& row) {
      const Value& v = row[lineitem::kShipDate];
      return v.is_int64() && v.AsInt64() < cutoff;
    };
    table::ColumnBound bound;
    bound.column = lineitem::kShipDate;
    bound.upper = Value::Int64(cutoff);
    spec.bounds.push_back(std::move(bound));
    DTL_ASSIGN_OR_RETURN(auto it, lineitem_table->Scan(spec));
    while (it->Next()) {
      const Value& v = it->row()[lineitem::kOrderKey];
      if (v.is_int64()) keys.insert(v.AsInt64());
    }
    DTL_RETURN_NOT_OK(it->status());
  }

  // Update side: set o_orderpriority for orders whose key joined.
  table::ScanSpec filter;
  filter.predicate_columns = {orders::kOrderKey};
  auto shared_keys = std::make_shared<std::unordered_set<int64_t>>(std::move(keys));
  filter.predicate = [shared_keys](const Row& row) {
    const Value& v = row[orders::kOrderKey];
    return v.is_int64() && shared_keys->count(v.AsInt64()) > 0;
  };
  table::Assignment assign;
  assign.column = orders::kOrderPriority;
  assign.compute = [](const Row&) { return Value::String("1-URGENT"); };
  return orders_table->Update(filter, {assign});
}

}  // namespace dtl::workload
