// Synthetic stand-in for the Zhejiang Grid production data sets (paper
// Tables II and III). The real data is proprietary; these generators keep
// what the experiments actually exercise:
//   * the schemas and the experiment columns the paper lists,
//   * relative table sizes (scaled by a single fraction),
//   * value distributions that give the paper's predicate selectivities
//     (e.g. 36 uniform days for the ratio sweeps, 20 area codes so one code
//     selects 5%, ...),
//   * wide rows (filler columns emulate the ">50 columns, <3 modified"
//     regime the paper describes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "table/storage_table.h"

namespace dtl::workload {

/// Scale knob: rows = max(min_rows, paper_rows × fraction).
struct GridConfig {
  double fraction = 1.0 / 4000.0;
  uint64_t min_rows = 500;
  uint64_t seed = 20150915;
  uint64_t batch_rows = 32768;
  /// Filler columns appended to every schema (wide-row emulation).
  int filler_columns = 8;
};

/// Days in the ratio-sweep tables (paper: "roughly uniformly distributed
/// data of 36 days").
inline constexpr int64_t kGridDays = 36;
/// Area-code cardinality: one code selects ~5%.
inline constexpr int64_t kAreaCodes = 20;
/// Outage-time cardinality: one time selects ~2%.
inline constexpr int64_t kOutageTimes = 50;
/// User types: selecting one day AND one of ~25 user types gives ~0.1%.
inline constexpr int64_t kUserTypes = 25;
/// Collection methods within a day: one day and one method ≈ 3%.
inline constexpr int64_t kCollectionMethods = 1;  // see U#4 predicate docs

/// One table of the grid data set.
struct GridTableSpec {
  std::string name;
  uint64_t paper_rows = 0;
  Schema schema;  // includes filler columns
};

/// Paper Table II (first experiment set: queries + ratio sweeps).
std::vector<GridTableSpec> TableIISpecs(const GridConfig& config);
/// Paper Table III (the Table IV statement suite).
std::vector<GridTableSpec> TableIIISpecs(const GridConfig& config);

/// Scaled row count for a spec.
uint64_t ScaledRows(const GridTableSpec& spec, const GridConfig& config);

/// Fills `storage` with deterministic rows for the named grid table.
Status GenerateGridTable(const GridTableSpec& spec, const GridConfig& config,
                         table::StorageTable* storage);

// --- the evaluation statements -------------------------------------------------

/// Grid SELECT #1 (Fig. 4): 3-way join of yh_gbjld, zc_zdzc, zd_gbcld with
/// predicates.
std::string GridSelect1();
/// Grid SELECT #2 (Fig. 4): COUNT(*) on tj_gbsjwzl_mx.
std::string GridSelect2();

/// UPDATE touching the first `days` of the 36-day span of tj_gbsjwzl_mx
/// (Fig. 5); selects days/36 of the rows.
std::string GridUpdateDays(int days);
/// DELETE touching the first `days` of the span (Fig. 6).
std::string GridDeleteDays(int days);
/// Full-view SELECT issued after the DML (Figs. 7-10).
std::string GridReadAfterDml();

/// One statement of the paper's Table IV suite.
struct GridStatement {
  std::string id;          // "U#1".."D#4"
  std::string description; // paper's semantics column
  std::string table;       // target table
  double ratio = 0.0;      // paper's modification ratio
  std::string sql;         // engine SQL (includes WITH RATIO)
};

/// The 8 representative statements (U#1-U#4, D#1-D#4) of paper Table IV.
std::vector<GridStatement> TableIVStatements();

// --- paper Table I: DML mix of the 5 business scenarios --------------------------

struct ScenarioMix {
  int scenario = 0;
  int total = 0;
  int deletes = 0;
  int updates = 0;
  int merges = 0;

  int dml() const { return deletes + updates + merges; }
  double dml_percent() const {
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(dml()) / total;
  }
};

/// Statement counts of the five core scenarios (paper Table I input data).
std::vector<ScenarioMix> ScenarioMixes();

}  // namespace dtl::workload
