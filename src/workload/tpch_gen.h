// Seeded dbgen-style generator for the two TPC-H tables the paper's
// evaluation uses (lineitem, orders), plus the evaluation's query and DML
// statements: Query-a = Q1, Query-b = Q12, Query-c = COUNT(*) on lineitem;
// DML-a updates 5% of lineitem, DML-b deletes 2% of lineitem, DML-c joins
// lineitem and orders and updates 16% of orders.
#pragma once

#include <cstdint>
#include <string>

#include "common/schema.h"
#include "common/status.h"
#include "table/storage_table.h"

namespace dtl::workload {

/// TPC-H scale: rows = base rows × scale_factor (SF 1 = 6M lineitem rows).
struct TpchConfig {
  double scale_factor = 0.01;
  uint64_t seed = 20150401;  // fixed: runs are reproducible
  uint64_t batch_rows = 32768;

  uint64_t lineitem_rows() const {
    return static_cast<uint64_t>(6000000.0 * scale_factor);
  }
  uint64_t orders_rows() const {
    return static_cast<uint64_t>(1500000.0 * scale_factor);
  }
};

Schema LineitemSchema();
Schema OrdersSchema();

/// Column ordinals used by queries and DML (kept in sync with the schemas).
namespace lineitem {
inline constexpr size_t kOrderKey = 0;
inline constexpr size_t kPartKey = 1;
inline constexpr size_t kSuppKey = 2;
inline constexpr size_t kLineNumber = 3;
inline constexpr size_t kQuantity = 4;
inline constexpr size_t kExtendedPrice = 5;
inline constexpr size_t kDiscount = 6;
inline constexpr size_t kTax = 7;
inline constexpr size_t kReturnFlag = 8;
inline constexpr size_t kLineStatus = 9;
inline constexpr size_t kShipDate = 10;
inline constexpr size_t kCommitDate = 11;
inline constexpr size_t kReceiptDate = 12;
inline constexpr size_t kShipInstruct = 13;
inline constexpr size_t kShipMode = 14;
inline constexpr size_t kComment = 15;
}  // namespace lineitem

namespace orders {
inline constexpr size_t kOrderKey = 0;
inline constexpr size_t kCustKey = 1;
inline constexpr size_t kOrderStatus = 2;
inline constexpr size_t kTotalPrice = 3;
inline constexpr size_t kOrderDate = 4;
inline constexpr size_t kOrderPriority = 5;
inline constexpr size_t kClerk = 6;
inline constexpr size_t kShipPriority = 7;
inline constexpr size_t kComment = 8;
}  // namespace orders

/// Ship dates span [kDateEpoch, kDateEpoch + kDateSpanDays); predicates that
/// select "the first p% of dates" hit ~p% of rows (uniform distribution).
inline constexpr int64_t kDateEpoch = 8400;      // ~1993-01-01 in days
inline constexpr int64_t kDateSpanDays = 2400;   // ~6.5 years

/// Populates `table` with deterministic lineitem rows.
Status GenerateLineitem(table::StorageTable* table, const TpchConfig& config);

/// Populates `table` with deterministic orders rows.
Status GenerateOrders(table::StorageTable* table, const TpchConfig& config);

/// TPC-H Q1 (Query-a) over the given table name, as engine SQL.
std::string QueryA(const std::string& lineitem_table);
/// TPC-H Q12 (Query-b) joining orders with lineitem.
std::string QueryB(const std::string& lineitem_table, const std::string& orders_table);
/// COUNT(*) on lineitem (Query-c).
std::string QueryC(const std::string& lineitem_table);

/// Predicate spec selecting ~ratio of lineitem rows by ship date (used by
/// the sweep benches); returned as SQL WHERE fragment.
std::string LineitemRatioPredicate(double ratio);

/// DML-a: UPDATE ~5% of lineitem (sets one field), as engine SQL.
std::string DmlA(const std::string& lineitem_table);
/// DML-b: DELETE ~2% of lineitem.
std::string DmlB(const std::string& lineitem_table);

/// DML-c: join lineitem and orders, update ~16% of orders. Executed through
/// the storage API because the SQL subset has no join-update; the join runs
/// as a SELECT, the update as an IN-set predicate.
Result<table::DmlResult> RunDmlC(table::StorageTable* orders_table,
                                 table::StorageTable* lineitem_table);

}  // namespace dtl::workload
