#include "workload/grid_gen.h"

#include <algorithm>
#include <cstdio>

#include "common/random.h"

namespace dtl::workload {

namespace {

/// Abstract integer day base for rq columns.
constexpr int64_t kDayBase = 736000;
/// Months in tj_sjwzl_y (one month ≈ 4%).
constexpr int64_t kMonths = 25;
/// Distinct terminal codes in tj_tdjl (one code + one time ≈ 0.01%).
constexpr int64_t kTdjlTerminals = 200;
/// Organization codes.
constexpr int64_t kOrgs = 30;
/// Manufacturer codes.
constexpr int64_t kManufacturers = 20;

std::string OrgCode(uint64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "org_%02llu", static_cast<unsigned long long>(i));
  return buf;
}

std::string AreaCode(uint64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "area_%02llu", static_cast<unsigned long long>(i));
  return buf;
}

std::string ManuCode(uint64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "manu_%02llu", static_cast<unsigned long long>(i));
  return buf;
}

Schema WithFillers(std::vector<Field> fields, int filler_columns) {
  for (int i = 0; i < filler_columns; ++i) {
    if (i % 2 == 0) {
      fields.push_back(Field{"pad_s" + std::to_string(i / 2), DataType::kString});
    } else {
      fields.push_back(Field{"pad_i" + std::to_string(i / 2), DataType::kInt64});
    }
  }
  return Schema(std::move(fields));
}

void AppendFillers(Random* rng, int filler_columns, Row* row) {
  for (int i = 0; i < filler_columns; ++i) {
    if (i % 2 == 0) {
      row->push_back(Value::String(rng->NextString(8)));
    } else {
      row->push_back(Value::Int64(static_cast<int64_t>(rng->Uniform(1000000))));
    }
  }
}

}  // namespace

std::vector<GridTableSpec> TableIISpecs(const GridConfig& config) {
  const int f = config.filler_columns;
  return {
      {"yh_gbjld", 7112576,
       WithFillers({{"dwdm", DataType::kString},
                    {"gddy", DataType::kInt64},
                    {"hh", DataType::kInt64},
                    {"sfyzx", DataType::kInt64},
                    {"cldjh", DataType::kInt64}},
                   f)},
      {"zd_gbcld", 7963648,
       WithFillers({{"cldjh", DataType::kInt64},
                    {"zdjh", DataType::kInt64},
                    {"dwdm", DataType::kString}},
                   f)},
      {"zc_zdzc", 74104736,
       WithFillers({{"dwdm", DataType::kString},
                    {"zdjh", DataType::kInt64},
                    {"zzcjbm", DataType::kString},
                    {"cjfs", DataType::kInt64},
                    {"zdlx", DataType::kInt64}},
                   f)},
      {"rw_gbrw", 34045664,
       WithFillers({{"xfsj", DataType::kInt64},
                    {"rwsx", DataType::kInt64},
                    {"cldh", DataType::kInt64}},
                   f)},
      {"tj_gbsjwzl_mx", 239032928,
       WithFillers({{"yhlx", DataType::kInt64},
                    {"rq", DataType::kDate},
                    {"dwdm", DataType::kString},
                    {"cjbm", DataType::kString}},
                   f)},
      {"tj_dzdyh", 9805312, WithFillers({{"zdjh", DataType::kInt64}}, f)},
  };
}

std::vector<GridTableSpec> TableIIISpecs(const GridConfig& config) {
  const int f = config.filler_columns;
  return {
      {"tj_tdjl", 58494976,
       WithFillers({{"tdsj", DataType::kInt64},
                    {"qym", DataType::kString},
                    {"zdjh", DataType::kInt64}},
                   f)},
      {"tj_td", 33036288,
       WithFillers({{"hfsj", DataType::kInt64}, {"tdsj", DataType::kInt64}}, f)},
      {"tj_sjwzl_r", 73569360,
       WithFillers({{"rq", DataType::kDate},
                    {"rcjl", DataType::kInt64},
                    {"yhlx", DataType::kInt64}},
                   f)},
      {"tj_dysjwzl_mx", 382890014,
       WithFillers({{"rq", DataType::kDate},
                    {"sfld", DataType::kBool},
                    {"cjfs", DataType::kInt64}},
                   f)},
      {"tj_sjwzl_y", 2586120, WithFillers({{"rq", DataType::kDate}}, f)},
      {"tj_gk", 30655920,
       WithFillers({{"rq", DataType::kDate},
                    {"dwdm", DataType::kString},
                    {"bz", DataType::kInt64}},
                   f)},
  };
}

uint64_t ScaledRows(const GridTableSpec& spec, const GridConfig& config) {
  return std::max<uint64_t>(
      config.min_rows,
      static_cast<uint64_t>(static_cast<double>(spec.paper_rows) * config.fraction));
}

Status GenerateGridTable(const GridTableSpec& spec, const GridConfig& config,
                         table::StorageTable* storage) {
  Random rng(config.seed ^ std::hash<std::string>{}(spec.name));
  const uint64_t rows = ScaledRows(spec, config);
  const int f = config.filler_columns;
  // zd_gbcld's measure-point key space; yh_gbjld/zc_zdzc reference it.
  const uint64_t zd_rows = ScaledRows(GridTableSpec{"zd_gbcld", 7963648, Schema()}, config);

  std::vector<Row> batch;
  batch.reserve(config.batch_rows);
  for (uint64_t i = 0; i < rows; ++i) {
    Row row;
    if (spec.name == "yh_gbjld") {
      row.push_back(Value::String(OrgCode(rng.Uniform(kOrgs))));
      row.push_back(Value::Int64(rng.Bernoulli(0.6) ? 220 : (rng.Bernoulli(0.5) ? 110 : 380)));
      row.push_back(Value::Int64(static_cast<int64_t>(i + 1)));          // hh
      row.push_back(Value::Int64(rng.Bernoulli(0.1) ? 1 : 0));          // sfyzx
      row.push_back(Value::Int64(static_cast<int64_t>(1 + rng.Uniform(zd_rows))));
    } else if (spec.name == "zd_gbcld") {
      row.push_back(Value::Int64(static_cast<int64_t>(i + 1)));  // cldjh
      row.push_back(Value::Int64(static_cast<int64_t>(i + 1)));  // zdjh
      row.push_back(Value::String(OrgCode(rng.Uniform(kOrgs))));
    } else if (spec.name == "zc_zdzc") {
      row.push_back(Value::String(OrgCode(rng.Uniform(kOrgs))));
      row.push_back(Value::Int64(static_cast<int64_t>(1 + rng.Uniform(zd_rows))));
      row.push_back(Value::String(ManuCode(rng.Uniform(kManufacturers))));
      row.push_back(Value::Int64(1 + static_cast<int64_t>(rng.Uniform(3))));  // cjfs
      row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(4))));      // zdlx
    } else if (spec.name == "rw_gbrw") {
      row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(96))));  // xfsj
      row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(5))));   // rwsx
      row.push_back(Value::Int64(static_cast<int64_t>(1 + rng.Uniform(zd_rows))));
    } else if (spec.name == "tj_gbsjwzl_mx") {
      row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(kUserTypes))));
      row.push_back(Value::Date(kDayBase + static_cast<int64_t>(rng.Uniform(kGridDays))));
      row.push_back(Value::String(OrgCode(rng.Uniform(kOrgs))));
      row.push_back(Value::String(ManuCode(rng.Uniform(kManufacturers))));
    } else if (spec.name == "tj_dzdyh") {
      row.push_back(Value::Int64(static_cast<int64_t>(1 + rng.Uniform(zd_rows))));
    } else if (spec.name == "tj_tdjl") {
      row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(kOutageTimes))));
      row.push_back(Value::String(AreaCode(rng.Uniform(kAreaCodes))));
      row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(kTdjlTerminals))));
    } else if (spec.name == "tj_td") {
      const int64_t tdsj = static_cast<int64_t>(1000 + rng.Uniform(100000));
      // 5% of outages have a (bogus) recovery time earlier than the outage.
      const int64_t hfsj = rng.Bernoulli(0.05) ? tdsj - 1 - static_cast<int64_t>(rng.Uniform(50))
                                               : tdsj + 1 + static_cast<int64_t>(rng.Uniform(500));
      row.push_back(Value::Int64(hfsj));
      row.push_back(Value::Int64(tdsj));
    } else if (spec.name == "tj_sjwzl_r") {
      row.push_back(Value::Date(kDayBase + static_cast<int64_t>(rng.Uniform(kGridDays))));
      row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(97))));  // rcjl
      row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(kUserTypes))));
    } else if (spec.name == "tj_dysjwzl_mx") {
      row.push_back(Value::Date(kDayBase + static_cast<int64_t>(rng.Uniform(kGridDays))));
      row.push_back(Value::Bool(rng.Bernoulli(0.02)));  // sfld: missed points rare
      row.push_back(Value::Int64(1 + static_cast<int64_t>(rng.Uniform(3))));  // cjfs
    } else if (spec.name == "tj_sjwzl_y") {
      row.push_back(Value::Date(kDayBase + static_cast<int64_t>(rng.Uniform(kMonths))));
    } else if (spec.name == "tj_gk") {
      row.push_back(Value::Date(kDayBase + static_cast<int64_t>(rng.Uniform(kGridDays))));
      row.push_back(Value::String(OrgCode(rng.Uniform(kOrgs))));
      row.push_back(Value::Int64(rng.Bernoulli(0.9) ? 1 : 0));  // bz marker
    } else {
      return Status::InvalidArgument("unknown grid table: " + spec.name);
    }
    AppendFillers(&rng, f, &row);
    batch.push_back(std::move(row));
    if (batch.size() >= config.batch_rows) {
      DTL_RETURN_NOT_OK(storage->InsertRows(batch));
      batch.clear();
    }
  }
  if (!batch.empty()) DTL_RETURN_NOT_OK(storage->InsertRows(batch));
  return Status::OK();
}

std::string GridSelect1() {
  return "SELECT y.hh, y.dwdm, c.zzcjbm "
         "FROM yh_gbjld y "
         "JOIN zd_gbcld d ON y.cldjh = d.cldjh "
         "JOIN zc_zdzc c ON d.zdjh = c.zdjh "
         "WHERE y.sfyzx = 0 AND y.gddy = 220 AND c.zdlx = 1";
}

std::string GridSelect2() { return "SELECT COUNT(*) FROM tj_gbsjwzl_mx"; }

std::string GridUpdateDays(int days) {
  const int64_t cutoff = kDayBase + days;
  char ratio[32];
  std::snprintf(ratio, sizeof(ratio), "%.6f",
                static_cast<double>(days) / static_cast<double>(kGridDays));
  return "UPDATE tj_gbsjwzl_mx SET cjbm = 'recollected' WHERE rq < " +
         std::to_string(cutoff) + " WITH RATIO " + ratio;
}

std::string GridDeleteDays(int days) {
  const int64_t cutoff = kDayBase + days;
  char ratio[32];
  std::snprintf(ratio, sizeof(ratio), "%.6f",
                static_cast<double>(days) / static_cast<double>(kGridDays));
  return "DELETE FROM tj_gbsjwzl_mx WHERE rq < " + std::to_string(cutoff) +
         " WITH RATIO " + ratio;
}

std::string GridReadAfterDml() {
  return "SELECT COUNT(*) cnt, SUM(yhlx) total_type FROM tj_gbsjwzl_mx";
}

std::vector<GridStatement> TableIVStatements() {
  std::vector<GridStatement> out;
  out.push_back({"U#1",
                 "Set the area code in which an outage event happens at a specified time",
                 "tj_tdjl", 0.02,
                 "UPDATE tj_tdjl SET qym = 'area_99' WHERE tdsj = 7 WITH RATIO 0.02"});
  out.push_back({"U#2",
                 "When the outage recovery time is earlier than the start time, mark it "
                 "as an error",
                 "tj_td", 0.05,
                 "UPDATE tj_td SET hfsj = -1 WHERE hfsj < tdsj WITH RATIO 0.05"});
  out.push_back({"U#3",
                 "Set the sampling rate of a day for a specified date and user type",
                 "tj_sjwzl_r", 0.001,
                 "UPDATE tj_sjwzl_r SET rcjl = 96 WHERE rq = " +
                     std::to_string(kDayBase + 3) + " AND yhlx = 5 WITH RATIO 0.001"});
  out.push_back({"U#4",
                 "Set the collection method of a specified day and user type",
                 "tj_dysjwzl_mx", 0.03,
                 "UPDATE tj_dysjwzl_mx SET cjfs = 2 WHERE rq = " +
                     std::to_string(kDayBase + 5) + " WITH RATIO 0.03"});
  out.push_back({"D#1", "Delete records from table tj_sjwzl_y for a specified month",
                 "tj_sjwzl_y", 0.04,
                 "DELETE FROM tj_sjwzl_y WHERE rq = " + std::to_string(kDayBase + 2) +
                     " WITH RATIO 0.04"});
  out.push_back({"D#2", "Delete records from table tj_tdjl for a specified area code",
                 "tj_tdjl", 0.05,
                 "DELETE FROM tj_tdjl WHERE qym = 'area_03' WITH RATIO 0.05"});
  out.push_back({"D#3",
                 "Delete records from table tj_gk for a specified organization code and "
                 "a marker",
                 "tj_gk", 0.03,
                 "DELETE FROM tj_gk WHERE dwdm = 'org_07' AND bz = 1 WITH RATIO 0.03"});
  out.push_back({"D#4",
                 "Delete records from table tj_tdjl for a specified terminal code and "
                 "outage time",
                 "tj_tdjl", 0.0001,
                 "DELETE FROM tj_tdjl WHERE zdjh = 42 AND tdsj = 13 WITH RATIO 0.0001"});
  return out;
}

std::vector<ScenarioMix> ScenarioMixes() {
  // Paper Table I: statement counts of the five core business scenarios.
  return {
      {1, 133, 15, 52, 15},
      {2, 75, 25, 20, 9},
      {3, 174, 27, 97, 13},
      {4, 12, 3, 3, 0},
      {5, 41, 3, 23, 0},
  };
}

}  // namespace dtl::workload
