// Name → table registry (the Hive metastore analog). Storage systems
// register concrete StorageTable instances; the SQL layer resolves names
// here.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/storage_table.h"

namespace dtl::table {

/// Storage backend of a catalog table.
enum class TableKind {
  kDual,      // the paper's contribution: ORC master + HBase attached
  kHiveOrc,   // plain Hive on HDFS/ORC (INSERT OVERWRITE updates)
  kHiveHBase, // Hive-on-HBase (whole table in the KV store)
  kAcid,      // HIVE-5317-style base + delta files
};

const char* TableKindName(TableKind kind);
Result<TableKind> ParseTableKind(const std::string& name);

/// Thread-safe table registry.
class Catalog {
 public:
  struct Entry {
    TableKind kind;
    std::shared_ptr<StorageTable> table;
  };

  Status Register(const std::string& name, TableKind kind,
                  std::shared_ptr<StorageTable> table);

  Result<Entry> Lookup(const std::string& name) const;

  /// Removes the entry; the caller drops the storage itself.
  Status Unregister(const std::string& name);

  bool Contains(const std::string& name) const;
  std::vector<std::string> TableNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Entry> tables_;
};

}  // namespace dtl::table
