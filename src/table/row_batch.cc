#include "table/row_batch.h"

#include "table/scan_stats.h"

namespace dtl::table {

const Value& ColumnVector::NullValue() {
  static const Value kNull = Value::Null();
  return kNull;
}

Value* ColumnVector::MakeMutable(size_t size) {
  if (!absent_ && !owned_.empty()) return owned_.data();
  if (absent_) {
    owned_.assign(size, Value::Null());
    size_ = size;
  } else {
    owned_.assign(view_, view_ + size_);
  }
  absent_ = false;
  view_ = owned_.data();
  return owned_.data();
}

void RowBatch::Reset(size_t num_columns, size_t num_rows) {
  num_columns_ = num_columns;
  num_rows_ = num_rows;
  if (columns_.size() < num_columns) columns_.resize(num_columns);
  for (size_t c = 0; c < num_columns; ++c) columns_[c].Reset();
  has_selection_ = false;
  selection_.clear();
  contiguous_ids_ = false;
  first_record_id_ = 0;
  record_ids_.clear();
  anchor_.reset();
}

void RowBatch::TruncateSelection(size_t n) {
  if (n >= size()) return;
  if (!has_selection_) {
    selection_.resize(n);
    for (size_t i = 0; i < n; ++i) selection_[i] = static_cast<uint32_t>(i);
    has_selection_ = true;
  } else {
    selection_.resize(n);
  }
}

void RowBatch::MaterializeRow(size_t i, Row* row) const {
  const size_t phys = row_index(i);
  row->resize(num_columns_);
  for (size_t c = 0; c < num_columns_; ++c) (*row)[c] = columns_[c].at(phys);
}

size_t RowBatch::FilterSelected(const RowPredicateFn& pred, Row* scratch,
                                ScanMeter* meter) {
  const size_t before = size();
  if (before == 0) return 0;
  if (!has_selection_) {
    // Fast path: scan for the first drop before touching the selection.
    size_t first_drop = 0;
    for (; first_drop < num_rows_; ++first_drop) {
      MaterializeRow(first_drop, scratch);
      if (!pred(*scratch)) break;
    }
    if (first_drop == num_rows_) return 0;  // everything survives, no selection
    selection_.clear();
    selection_.reserve(num_rows_);
    for (size_t i = 0; i < first_drop; ++i) selection_.push_back(static_cast<uint32_t>(i));
    for (size_t i = first_drop + 1; i < num_rows_; ++i) {
      MaterializeRow(i, scratch);
      if (pred(*scratch)) selection_.push_back(static_cast<uint32_t>(i));
    }
    has_selection_ = true;
  } else {
    size_t out = 0;
    for (size_t i = 0; i < selection_.size(); ++i) {
      MaterializeRow(i, scratch);
      if (pred(*scratch)) selection_[out++] = selection_[i];
    }
    selection_.resize(out);
  }
  const size_t dropped = before - size();
  (meter != nullptr ? *meter : GlobalScanMeter()).AddPredicateDrops(dropped);
  return dropped;
}

}  // namespace dtl::table
