#include "table/catalog.h"

#include <cctype>

namespace dtl::table {

namespace {
std::string ToLower(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}
}  // namespace

const char* TableKindName(TableKind kind) {
  switch (kind) {
    case TableKind::kDual:
      return "dualtable";
    case TableKind::kHiveOrc:
      return "hive";
    case TableKind::kHiveHBase:
      return "hbase";
    case TableKind::kAcid:
      return "acid";
  }
  return "?";
}

Result<TableKind> ParseTableKind(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "dualtable" || lower == "dual") return TableKind::kDual;
  if (lower == "hive" || lower == "orc" || lower == "hdfs") return TableKind::kHiveOrc;
  if (lower == "hbase") return TableKind::kHiveHBase;
  if (lower == "acid") return TableKind::kAcid;
  return Status::InvalidArgument("unknown table kind: " + name);
}

Status Catalog::Register(const std::string& name, TableKind kind,
                         std::shared_ptr<StorageTable> table) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  tables_[key] = Entry{kind, std::move(table)};
  return Status::OK();
}

Result<Catalog::Entry> Catalog::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second;
}

Status Catalog::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.erase(ToLower(name)) == 0) {
    return Status::NotFound("no such table: " + name);
  }
  return Status::OK();
}

bool Catalog::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(ToLower(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

}  // namespace dtl::table
