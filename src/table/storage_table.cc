#include "table/storage_table.h"

#include <algorithm>

namespace dtl::table {

const char* DmlPlanName(DmlPlan plan) {
  switch (plan) {
    case DmlPlan::kOverwrite:
      return "OVERWRITE";
    case DmlPlan::kEdit:
      return "EDIT";
    case DmlPlan::kInPlace:
      return "INPLACE";
    case DmlPlan::kDelta:
      return "DELTA";
  }
  return "?";
}

std::vector<size_t> ScanSpec::RequiredColumns(size_t num_fields) const {
  if (projection.empty()) {
    std::vector<size_t> all(num_fields);
    for (size_t i = 0; i < num_fields; ++i) all[i] = i;
    return all;
  }
  std::vector<size_t> required = projection;
  required.insert(required.end(), predicate_columns.begin(), predicate_columns.end());
  std::sort(required.begin(), required.end());
  required.erase(std::unique(required.begin(), required.end()), required.end());
  return required;
}

Result<std::vector<ScanSplit>> StorageTable::CreateSplits(const ScanSpec& spec) {
  std::vector<ScanSplit> splits;
  ScanSpec copy = spec;
  StorageTable* self = this;
  splits.push_back(ScanSplit{
      name(), [self, copy]() -> Result<std::unique_ptr<RowIterator>> {
        return self->Scan(copy);
      }});
  return splits;
}

Result<uint64_t> StorageTable::CountRows() {
  ScanSpec spec;
  // Project the narrowest single column; counting does not need data, but a
  // scan must materialize something.
  spec.projection = {0};
  DTL_ASSIGN_OR_RETURN(auto it, Scan(spec));
  uint64_t count = 0;
  while (it->Next()) ++count;
  DTL_RETURN_NOT_OK(it->status());
  return count;
}

Result<std::vector<Row>> CollectRows(StorageTable* table, const ScanSpec& spec) {
  DTL_ASSIGN_OR_RETURN(auto it, table->Scan(spec));
  std::vector<Row> rows;
  while (it->Next()) rows.push_back(it->row());
  DTL_RETURN_NOT_OK(it->status());
  return rows;
}

}  // namespace dtl::table
