#include "table/storage_table.h"

#include <algorithm>

#include "table/scan_stats.h"

namespace dtl::table {

// --- adapters ---------------------------------------------------------------------

bool BatchToRowAdapter::Next() {
  while (true) {
    if (!loaded_ || index_ >= batch_.size()) {
      loaded_ = false;
      if (!batches_->Next(&batch_)) return false;
      if (batch_.empty()) continue;  // producers shouldn't emit these; be safe
      loaded_ = true;
      index_ = 0;
    }
    batch_.MaterializeRow(index_, &row_);
    record_id_ = batch_.record_id(index_);
    ++index_;
    (meter_ != nullptr ? *meter_ : GlobalScanMeter()).AddMaterializedRows(1);
    return true;
  }
}

bool RowToBatchAdapter::Next(RowBatch* batch) {
  std::vector<std::vector<Value>> columns(num_columns_);
  std::vector<uint64_t> ids;
  size_t n = 0;
  while (n < capacity_ && rows_->Next()) {
    const Row& row = rows_->row();
    for (size_t c = 0; c < num_columns_; ++c) {
      columns[c].push_back(c < row.size() ? row[c] : Value::Null());
    }
    ids.push_back(rows_->record_id());
    ++n;
  }
  if (n == 0) return false;
  batch->Reset(num_columns_, n);
  for (size_t c = 0; c < num_columns_; ++c) {
    batch->column(c).SetOwned(std::move(columns[c]));
  }
  batch->SetRecordIds(std::move(ids));
  (meter_ != nullptr ? *meter_ : GlobalScanMeter()).AddBatch(n, 0);
  return true;
}

const char* DmlPlanName(DmlPlan plan) {
  switch (plan) {
    case DmlPlan::kOverwrite:
      return "OVERWRITE";
    case DmlPlan::kEdit:
      return "EDIT";
    case DmlPlan::kInPlace:
      return "INPLACE";
    case DmlPlan::kDelta:
      return "DELTA";
  }
  return "?";
}

std::vector<size_t> ScanSpec::RequiredColumns(size_t num_fields) const {
  if (projection.empty()) {
    std::vector<size_t> all(num_fields);
    for (size_t i = 0; i < num_fields; ++i) all[i] = i;
    return all;
  }
  std::vector<size_t> required = projection;
  required.insert(required.end(), predicate_columns.begin(), predicate_columns.end());
  std::sort(required.begin(), required.end());
  required.erase(std::unique(required.begin(), required.end()), required.end());
  return required;
}

Result<std::unique_ptr<BatchIterator>> StorageTable::ScanBatches(const ScanSpec& spec) {
  DTL_ASSIGN_OR_RETURN(auto it, Scan(spec));
  return std::unique_ptr<BatchIterator>(new RowToBatchAdapter(
      std::move(it), schema().num_fields(), kDefaultBatchRows, spec.meter));
}

Result<std::vector<ScanSplit>> StorageTable::CreateSplits(const ScanSpec& spec) {
  std::vector<ScanSplit> splits;
  ScanSpec copy = spec;
  StorageTable* self = this;
  splits.push_back(ScanSplit{
      name(), [self, copy]() -> Result<std::unique_ptr<RowIterator>> {
        return self->Scan(copy);
      }});
  return splits;
}

Result<uint64_t> StorageTable::CountRows() {
  ScanSpec spec;
  // Project the narrowest single column; counting does not need data, but a
  // scan must materialize something.
  spec.projection = {0};
  DTL_ASSIGN_OR_RETURN(auto it, Scan(spec));
  uint64_t count = 0;
  while (it->Next()) ++count;
  DTL_RETURN_NOT_OK(it->status());
  return count;
}

Result<std::vector<Row>> CollectRows(StorageTable* table, const ScanSpec& spec) {
  DTL_ASSIGN_OR_RETURN(auto it, table->Scan(spec));
  std::vector<Row> rows;
  while (it->Next()) rows.push_back(it->row());
  DTL_RETURN_NOT_OK(it->status());
  return rows;
}

Result<std::vector<Row>> CollectBatchRows(BatchIterator* it) {
  std::vector<Row> rows;
  RowBatch batch;
  while (it->Next(&batch)) {
    for (size_t i = 0; i < batch.size(); ++i) {
      Row row;
      batch.MaterializeRow(i, &row);
      rows.push_back(std::move(row));
    }
  }
  DTL_RETURN_NOT_OK(it->status());
  return rows;
}

}  // namespace dtl::table
