#include "table/csv.h"

#include <cstdlib>

namespace dtl::table {

Result<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                              const CsvOptions& options) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {  // escaped quote
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
      continue;
    }
    if (c == '"' && current.empty()) {
      in_quotes = true;
    } else if (c == options.delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quote in CSV line");
  fields.push_back(std::move(current));
  return fields;
}

Result<Value> ParseCsvField(const std::string& text, DataType type,
                            const std::string& column, const CsvOptions& options) {
  if (text == options.null_token) return Value::Null();
  switch (type) {
    case DataType::kInt64:
    case DataType::kDate: {
      char* end = nullptr;
      const int64_t v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad integer '" + text + "' for column " + column);
      }
      return Value::Int64(v);
    }
    case DataType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad double '" + text + "' for column " + column);
      }
      return Value::Double(v);
    }
    case DataType::kBool:
      if (text == "true" || text == "1") return Value::Bool(true);
      if (text == "false" || text == "0") return Value::Bool(false);
      return Status::InvalidArgument("bad boolean '" + text + "' for column " + column);
    case DataType::kString:
      return Value::String(text);
    case DataType::kNull:
      break;
  }
  return Status::InvalidArgument("unsupported column type for CSV column " + column);
}

Result<std::vector<Row>> ReadCsvFile(const fs::SimFileSystem* fs, const std::string& path,
                                     const Schema& schema, const CsvOptions& options) {
  DTL_ASSIGN_OR_RETURN(auto file, fs->NewSequentialFile(path));
  std::string contents;
  std::string chunk;
  while (!file->AtEnd()) {
    DTL_RETURN_NOT_OK(file->Read(1 << 20, &chunk));
    contents += chunk;
  }

  std::vector<Row> rows;
  size_t start = 0;
  bool first_line = true;
  size_t line_number = 0;
  while (start <= contents.size()) {
    size_t end = contents.find('\n', start);
    std::string line = contents.substr(
        start, end == std::string::npos ? std::string::npos : end - start);
    start = end == std::string::npos ? contents.size() + 1 : end + 1;
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (first_line && options.skip_header) {
      first_line = false;
      continue;
    }
    first_line = false;

    DTL_ASSIGN_OR_RETURN(auto fields, SplitCsvLine(line, options));
    if (fields.size() != schema.num_fields()) {
      return Status::InvalidArgument(
          "CSV line " + std::to_string(line_number) + " has " +
          std::to_string(fields.size()) + " fields, schema expects " +
          std::to_string(schema.num_fields()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      DTL_ASSIGN_OR_RETURN(Value v, ParseCsvField(fields[i], schema.field(i).type,
                                                  schema.field(i).name, options));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string FormatCsvRow(const Row& row, const CsvOptions& options) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(options.delimiter);
    if (row[i].is_null()) {
      out += options.null_token;
      continue;
    }
    std::string text = row[i].ToString();
    const bool needs_quotes = text.find(options.delimiter) != std::string::npos ||
                              text.find('"') != std::string::npos ||
                              text.find('\n') != std::string::npos;
    if (needs_quotes) {
      out.push_back('"');
      for (char c : text) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
      }
      out.push_back('"');
    } else {
      out += text;
    }
  }
  return out;
}

}  // namespace dtl::table
