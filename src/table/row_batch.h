// Column-major row batches: the unit of data movement on the vectorized
// read path (ORC stripe -> master scan -> UNION READ -> executor). A batch
// holds up to ~1024 rows as per-column value vectors plus a per-row record-ID
// column and an optional selection vector, so filters and delete masks
// compress the visible row set without moving any cell data.
//
// Columns come in three states:
//   - view:   a zero-copy pointer into storage someone else owns (typically a
//             decoded ORC StripeBatch, kept alive via the batch's anchor);
//   - owned:  a private copy, created lazily when a consumer needs to patch
//             cells in place (UNION READ overlaying attached updates);
//   - absent: not materialized by the scan; reads as NULL (matching the
//             row-path convention that non-required columns are NULL).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/schema.h"
#include "common/value.h"
#include "table/spec.h"

namespace dtl::table {

/// Rows per batch on the vectorized read path. Large enough to amortize
/// per-batch bookkeeping, small enough to stay cache-resident.
inline constexpr size_t kDefaultBatchRows = 1024;

/// One column of a RowBatch; see file comment for the three states.
class ColumnVector {
 public:
  ColumnVector() = default;

  /// Back to the absent state (reads as NULL).
  void Reset() {
    view_ = nullptr;
    size_ = 0;
    absent_ = true;
    owned_.clear();
  }

  /// Zero-copy: points at `size` values owned elsewhere.
  void SetView(const Value* data, size_t size) {
    view_ = data;
    size_ = size;
    absent_ = false;
    owned_.clear();
  }

  /// Takes ownership of the values.
  void SetOwned(std::vector<Value> values) {
    owned_ = std::move(values);
    view_ = owned_.data();
    size_ = owned_.size();
    absent_ = false;
  }

  bool absent() const { return absent_; }
  bool is_view() const { return !absent_ && owned_.empty(); }
  size_t size() const { return size_; }

  /// Cell `i` (physical row index); NULL for absent columns.
  const Value& at(size_t i) const {
    if (absent_) return NullValue();
    DTL_DCHECK_LT(i, size_);
    return view_[i];
  }

  /// Raw cell storage (view or owned); nullptr for absent columns.
  const Value* data() const { return absent_ ? nullptr : view_; }

  /// Copy-on-write: after this call the column owns its cells and they may
  /// be patched through the returned pointer. Absent columns materialize as
  /// `size` NULLs (the row path also lets updates land on non-projected
  /// columns, so an overlay may need to write into an absent column).
  Value* MakeMutable(size_t size);

  static const Value& NullValue();

 private:
  const Value* view_ = nullptr;
  size_t size_ = 0;
  bool absent_ = true;
  std::vector<Value> owned_;
};

/// A column-major batch of rows. Physical rows are [0, num_rows); consumers
/// see the *selected* rows — all of them until a selection vector is set.
class RowBatch {
 public:
  RowBatch() = default;

  /// Reinitializes to `num_rows` physical rows over `num_columns` absent
  /// columns, no selection, no record IDs, no anchor. Reuses storage.
  void Reset(size_t num_columns, size_t num_rows);

  size_t num_columns() const { return num_columns_; }
  /// Physical rows (before selection).
  size_t num_rows() const { return num_rows_; }
  /// Visible rows (after selection).
  size_t size() const { return has_selection_ ? selection_.size() : num_rows_; }
  bool empty() const { return size() == 0; }

  ColumnVector& column(size_t c) {
    DTL_DCHECK_LT(c, num_columns_);
    return columns_[c];
  }
  const ColumnVector& column(size_t c) const {
    DTL_DCHECK_LT(c, num_columns_);
    return columns_[c];
  }

  // --- selection vector ---
  bool has_selection() const { return has_selection_; }
  /// Physical row index of visible row `i`.
  size_t row_index(size_t i) const {
    DTL_DCHECK_LT(i, size());
    return has_selection_ ? selection_[i] : i;
  }
  /// Installs an explicit selection (ascending physical indices < num_rows).
  void SetSelection(std::vector<uint32_t> selection) {
#ifndef NDEBUG
    for (size_t i = 0; i < selection.size(); ++i) {
      DTL_DCHECK_LT(selection[i], num_rows_);
      if (i > 0) DTL_DCHECK_LT(selection[i - 1], selection[i]);
    }
#endif
    selection_ = std::move(selection);
    has_selection_ = true;
  }
  void ClearSelection() {
    has_selection_ = false;
    selection_.clear();
  }

  /// Keeps only the first `n` visible rows (LIMIT).
  void TruncateSelection(size_t n);

  /// Filters the visible rows through `pred`, materializing each candidate
  /// into `*scratch` (reused, full width). Compresses the selection in
  /// place; when nothing is dropped and no selection existed, none is
  /// created (the pass-through fast path). Returns the number dropped.
  /// Drops are charged to `meter`, or to the global meter when null.
  size_t FilterSelected(const RowPredicateFn& pred, Row* scratch,
                        ScanMeter* meter = nullptr);

  // --- record IDs ---
  /// Record IDs ascending contiguously from `first` (a master-file slice).
  void SetContiguousRecordIds(uint64_t first) {
    contiguous_ids_ = true;
    first_record_id_ = first;
    record_ids_.clear();
  }
  /// Explicit per-physical-row record IDs.
  void SetRecordIds(std::vector<uint64_t> ids) {
    contiguous_ids_ = false;
    record_ids_ = std::move(ids);
  }
  bool contiguous_record_ids() const { return contiguous_ids_; }
  bool has_record_ids() const { return contiguous_ids_ || !record_ids_.empty(); }
  /// Record ID of visible row `i` (0 when the producer set none).
  uint64_t record_id(size_t i) const {
    const size_t phys = row_index(i);
    if (contiguous_ids_) return first_record_id_ + phys;
    return phys < record_ids_.size() ? record_ids_[phys] : 0;
  }

  /// Cell (`c`, visible row `i`).
  const Value& ValueAt(size_t c, size_t i) const { return columns_[c].at(row_index(i)); }

  /// Copies visible row `i` into `*row` as a full-width row (absent columns
  /// NULL), reusing the row's storage.
  void MaterializeRow(size_t i, Row* row) const;

  /// Holds the backing storage of view columns alive (e.g. the decoded
  /// stripe). Cleared by Reset().
  void SetAnchor(std::shared_ptr<const void> anchor) { anchor_ = std::move(anchor); }
  const std::shared_ptr<const void>& anchor() const { return anchor_; }

 private:
  size_t num_columns_ = 0;
  size_t num_rows_ = 0;
  std::vector<ColumnVector> columns_;
  bool has_selection_ = false;
  std::vector<uint32_t> selection_;
  bool contiguous_ids_ = false;
  uint64_t first_record_id_ = 0;
  std::vector<uint64_t> record_ids_;
  std::shared_ptr<const void> anchor_;
};

}  // namespace dtl::table
