// The storage-agnostic table interface every system under test implements.
// The SQL executor, the benches, and the examples talk only to this.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "table/row_batch.h"
#include "table/spec.h"

namespace dtl::table {

/// Pull iterator over scan results. Rows are full schema width; columns
/// outside the scan's required set are NULL.
class RowIterator {
 public:
  virtual ~RowIterator() = default;

  /// Advances; false at end or error (check status()).
  virtual bool Next() = 0;
  virtual const Row& row() const = 0;
  /// DualTable record ID of the current row; 0 for systems without one.
  virtual uint64_t record_id() const { return 0; }
  virtual const Status& status() const = 0;
};

/// Pull iterator over scan results in column-major batches — the vectorized
/// sibling of RowIterator. Producers fill the caller's batch (so one batch's
/// storage is reused across the scan) and never emit empty batches.
class BatchIterator {
 public:
  virtual ~BatchIterator() = default;

  /// Fills `*batch` with the next non-empty batch. False at end or error
  /// (check status()). The batch contents stay valid until the next call.
  virtual bool Next(RowBatch* batch) = 0;
  virtual const Status& status() const = 0;
};

class ScanMeter;

/// Presents a BatchIterator as a RowIterator: materializes one (reused) row
/// at a time. This is how row-at-a-time consumers (joins, aggregates, the
/// MapReduce splits, DML scans) ride the batch read path unchanged.
/// `meter` defaults to the process-global scan meter when null.
class BatchToRowAdapter : public RowIterator {
 public:
  explicit BatchToRowAdapter(std::unique_ptr<BatchIterator> batches,
                             ScanMeter* meter = nullptr)
      : batches_(std::move(batches)), meter_(meter) {}

  bool Next() override;
  const Row& row() const override { return row_; }
  uint64_t record_id() const override { return record_id_; }
  const Status& status() const override { return batches_->status(); }

 private:
  std::unique_ptr<BatchIterator> batches_;
  ScanMeter* meter_;
  RowBatch batch_;
  size_t index_ = 0;
  bool loaded_ = false;
  Row row_;
  uint64_t record_id_ = 0;
};

/// Presents a RowIterator as a BatchIterator by buffering up to `capacity`
/// rows per batch (owned columns). Default ScanBatches() for storage systems
/// without a native batch path. `meter` defaults to the global meter.
class RowToBatchAdapter : public BatchIterator {
 public:
  RowToBatchAdapter(std::unique_ptr<RowIterator> rows, size_t num_columns,
                    size_t capacity = kDefaultBatchRows, ScanMeter* meter = nullptr)
      : rows_(std::move(rows)), num_columns_(num_columns), capacity_(capacity),
        meter_(meter) {}

  bool Next(RowBatch* batch) override;
  const Status& status() const override { return rows_->status(); }

 private:
  std::unique_ptr<RowIterator> rows_;
  size_t num_columns_;
  size_t capacity_;
  ScanMeter* meter_;
};

/// One independently openable unit of a scan (≈ a MapReduce input split:
/// a master file, a chunk, or a region range).
struct ScanSplit {
  std::string label;
  std::function<Result<std::unique_ptr<RowIterator>>()> open;
};

/// A named table in some storage system.
class StorageTable {
 public:
  virtual ~StorageTable() = default;

  virtual const std::string& name() const = 0;
  virtual const Schema& schema() const = 0;

  /// Sequential scan honoring the spec (projection, predicate, pruning).
  virtual Result<std::unique_ptr<RowIterator>> Scan(const ScanSpec& spec) = 0;

  /// Vectorized sequential scan. Default: the row scan repackaged through a
  /// RowToBatchAdapter; storage systems with a native batch path override.
  virtual Result<std::unique_ptr<BatchIterator>> ScanBatches(const ScanSpec& spec);

  /// Splits for MapReduce-style parallel scans. Default: one split wrapping
  /// the sequential scan.
  virtual Result<std::vector<ScanSplit>> CreateSplits(const ScanSpec& spec);

  /// Appends rows (INSERT INTO / LOAD).
  virtual Status InsertRows(const std::vector<Row>& rows) = 0;

  /// Replaces the table's entire contents (INSERT OVERWRITE TABLE).
  virtual Status OverwriteRows(const std::vector<Row>& rows) = 0;

  /// UPDATE <table> SET <assignments> WHERE <predicate>.
  virtual Result<DmlResult> Update(const ScanSpec& filter,
                                   const std::vector<Assignment>& assignments) = 0;

  /// DELETE FROM <table> WHERE <predicate>.
  virtual Result<DmlResult> Delete(const ScanSpec& filter) = 0;

  /// Total number of live rows (post-merge view).
  virtual Result<uint64_t> CountRows();

  /// Removes all backing storage.
  virtual Status Drop() = 0;
};

/// Drains a scan into memory (tests/examples; not for big tables).
Result<std::vector<Row>> CollectRows(StorageTable* table, const ScanSpec& spec);

/// Drains a batch iterator into materialized rows (tests/equivalence).
Result<std::vector<Row>> CollectBatchRows(BatchIterator* it);

}  // namespace dtl::table
