// The storage-agnostic table interface every system under test implements.
// The SQL executor, the benches, and the examples talk only to this.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "table/spec.h"

namespace dtl::table {

/// Pull iterator over scan results. Rows are full schema width; columns
/// outside the scan's required set are NULL.
class RowIterator {
 public:
  virtual ~RowIterator() = default;

  /// Advances; false at end or error (check status()).
  virtual bool Next() = 0;
  virtual const Row& row() const = 0;
  /// DualTable record ID of the current row; 0 for systems without one.
  virtual uint64_t record_id() const { return 0; }
  virtual const Status& status() const = 0;
};

/// One independently openable unit of a scan (≈ a MapReduce input split:
/// a master file, a chunk, or a region range).
struct ScanSplit {
  std::string label;
  std::function<Result<std::unique_ptr<RowIterator>>()> open;
};

/// A named table in some storage system.
class StorageTable {
 public:
  virtual ~StorageTable() = default;

  virtual const std::string& name() const = 0;
  virtual const Schema& schema() const = 0;

  /// Sequential scan honoring the spec (projection, predicate, pruning).
  virtual Result<std::unique_ptr<RowIterator>> Scan(const ScanSpec& spec) = 0;

  /// Splits for MapReduce-style parallel scans. Default: one split wrapping
  /// the sequential scan.
  virtual Result<std::vector<ScanSplit>> CreateSplits(const ScanSpec& spec);

  /// Appends rows (INSERT INTO / LOAD).
  virtual Status InsertRows(const std::vector<Row>& rows) = 0;

  /// Replaces the table's entire contents (INSERT OVERWRITE TABLE).
  virtual Status OverwriteRows(const std::vector<Row>& rows) = 0;

  /// UPDATE <table> SET <assignments> WHERE <predicate>.
  virtual Result<DmlResult> Update(const ScanSpec& filter,
                                   const std::vector<Assignment>& assignments) = 0;

  /// DELETE FROM <table> WHERE <predicate>.
  virtual Result<DmlResult> Delete(const ScanSpec& filter) = 0;

  /// Total number of live rows (post-merge view).
  virtual Result<uint64_t> CountRows();

  /// Removes all backing storage.
  virtual Status Drop() = 0;
};

/// Drains a scan into memory (tests/examples; not for big tables).
Result<std::vector<Row>> CollectRows(StorageTable* table, const ScanSpec& spec);

}  // namespace dtl::table
