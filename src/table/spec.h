// Scan and DML specifications shared by every storage system (Hive-on-HDFS,
// Hive-on-HBase, Hive ACID, DualTable). The SQL layer compiles statements
// into these; benches and examples may also build them directly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/schema.h"

namespace dtl::table {

class ScanMeter;

/// Inclusive value bounds on one column, used for stripe-level pruning
/// against ORC statistics. A scan may carry several.
struct ColumnBound {
  size_t column = 0;
  std::optional<Value> lower;
  std::optional<Value> upper;
};

/// Row filter evaluated over a full-schema-width row (non-required columns
/// hold NULL). Shared so operators can hold copies cheaply.
using RowPredicateFn = std::function<bool(const Row&)>;

/// What a scan must produce.
struct ScanSpec {
  /// Column ordinals the consumer will read. Empty means every column.
  std::vector<size_t> projection;
  /// Optional residual filter; evaluated on the storage side.
  RowPredicateFn predicate;
  /// Columns the predicate touches (must be materialized even if not
  /// projected).
  std::vector<size_t> predicate_columns;
  /// Stats-prunable bounds implied by the predicate (conjunctive).
  std::vector<ColumnBound> bounds;
  /// Meter the scan reports to; nullptr means the process-global one.
  /// Parallel scans point each worker's spec at a worker-local meter.
  ScanMeter* meter = nullptr;

  /// Ordinals that must be materialized: projection ∪ predicate_columns
  /// (empty means all).
  std::vector<size_t> RequiredColumns(size_t num_fields) const;
};

/// One SET clause: assigns `column` the value computed from the current
/// (full-width) row. Pure function of the row.
struct Assignment {
  size_t column = 0;
  std::function<Value(const Row&)> compute;
  /// Columns `compute` reads (must be materialized by the DML scan).
  std::vector<size_t> input_columns;
};

/// Which physical plan a DML statement executed with.
enum class DmlPlan {
  kOverwrite,  // whole-table rewrite (Hive's INSERT OVERWRITE path)
  kEdit,       // delta records into the attached store (DualTable EDIT)
  kInPlace,    // direct record mutation (Hive-on-HBase)
  kDelta,      // new delta file (Hive ACID)
};

const char* DmlPlanName(DmlPlan plan);

/// Outcome of an UPDATE or DELETE.
struct DmlResult {
  uint64_t rows_matched = 0;
  uint64_t rows_scanned = 0;
  DmlPlan plan = DmlPlan::kOverwrite;
};

}  // namespace dtl::table
