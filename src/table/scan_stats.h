// Scan-path metering in the style of fs::IoStats: every batch and row moved
// by the vectorized read path is counted here, so benches can report
// rows/sec, batch sizes, selectivity, and how often the UNION READ
// no-modification fast path (plain batch pass-through) was taken.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace dtl::table {

/// Point-in-time copy of the scan counters; subtract two for a delta.
struct ScanSnapshot {
  uint64_t batches = 0;            // batches emitted by storage scans
  uint64_t rows = 0;               // physical rows in those batches
  uint64_t bytes = 0;              // encoded column bytes decoded for them
  uint64_t passthrough_batches = 0;  // UNION READ fast path (no modification)
  uint64_t patched_rows = 0;       // rows overlaid with attached updates
  uint64_t masked_rows = 0;        // rows hidden by attached delete markers
  uint64_t predicate_drops = 0;    // rows removed by selection-vector filters
  uint64_t materialized_rows = 0;  // rows copied out as Row objects (adapters)
  uint64_t stripes_skipped = 0;    // stripes pruned by min/max or bloom stats
  uint64_t stripes_skipped_bloom = 0;  // subset pruned only by the bloom probe
  uint64_t files_skipped = 0;      // files whose every stripe was pruned

  ScanSnapshot operator-(const ScanSnapshot& rhs) const {
    ScanSnapshot d;
    d.batches = batches - rhs.batches;
    d.rows = rows - rhs.rows;
    d.bytes = bytes - rhs.bytes;
    d.passthrough_batches = passthrough_batches - rhs.passthrough_batches;
    d.patched_rows = patched_rows - rhs.patched_rows;
    d.masked_rows = masked_rows - rhs.masked_rows;
    d.predicate_drops = predicate_drops - rhs.predicate_drops;
    d.materialized_rows = materialized_rows - rhs.materialized_rows;
    d.stripes_skipped = stripes_skipped - rhs.stripes_skipped;
    d.stripes_skipped_bloom = stripes_skipped_bloom - rhs.stripes_skipped_bloom;
    d.files_skipped = files_skipped - rhs.files_skipped;
    return d;
  }

  /// Divides every counter by `n` (integer floor). Benches use this to turn
  /// a delta spanning all timed iterations of a repeated identical scan into
  /// the per-scan figure, so each logical row and batch is reported once.
  ScanSnapshot operator/(uint64_t n) const {
    if (n == 0) return *this;
    ScanSnapshot d;
    d.batches = batches / n;
    d.rows = rows / n;
    d.bytes = bytes / n;
    d.passthrough_batches = passthrough_batches / n;
    d.patched_rows = patched_rows / n;
    d.masked_rows = masked_rows / n;
    d.predicate_drops = predicate_drops / n;
    d.materialized_rows = materialized_rows / n;
    d.stripes_skipped = stripes_skipped / n;
    d.stripes_skipped_bloom = stripes_skipped_bloom / n;
    d.files_skipped = files_skipped / n;
    return d;
  }

  /// Fraction of scanned rows that survived filters and masks (1.0 when no
  /// rows were scanned).
  double Selectivity() const {
    if (rows == 0) return 1.0;
    const uint64_t kept = rows - predicate_drops - masked_rows;
    return static_cast<double>(kept) / static_cast<double>(rows);
  }

  std::string ToString() const {
    return "scan{batches=" + std::to_string(batches) + " rows=" + std::to_string(rows) +
           " bytes=" + std::to_string(bytes) +
           " passthrough=" + std::to_string(passthrough_batches) +
           " patched=" + std::to_string(patched_rows) +
           " masked=" + std::to_string(masked_rows) +
           " dropped=" + std::to_string(predicate_drops) +
           " materialized=" + std::to_string(materialized_rows) +
           " stripes_skipped=" + std::to_string(stripes_skipped) +
           " bloom_skipped=" + std::to_string(stripes_skipped_bloom) +
           " files_skipped=" + std::to_string(files_skipped) + "}";
  }
};

/// Thread-safe accumulator; one process-global instance (GlobalScanMeter).
///
/// A meter may be constructed with a forward target: every charge is then
/// mirrored into the target as well. Sessions use this to keep a private
/// meter (their scan counters, uncontaminated by concurrent sessions) that
/// still feeds GlobalScanMeter(), so the long-standing process-wide totals
/// that benches snapshot keep working. Explicitly-created meters (worker
/// locals, test meters) default to no forwarding and count exactly what
/// they observe.
class ScanMeter {
 public:
  ScanMeter() = default;
  explicit ScanMeter(ScanMeter* forward) : forward_(forward) {}

  void AddBatch(uint64_t rows, uint64_t bytes) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    rows_.fetch_add(rows, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    if (forward_ != nullptr) forward_->AddBatch(rows, bytes);
  }
  void AddPassthroughBatch() {
    passthrough_batches_.fetch_add(1, std::memory_order_relaxed);
    if (forward_ != nullptr) forward_->AddPassthroughBatch();
  }
  void AddPatchedRows(uint64_t n) {
    patched_rows_.fetch_add(n, std::memory_order_relaxed);
    if (forward_ != nullptr) forward_->AddPatchedRows(n);
  }
  void AddMaskedRows(uint64_t n) {
    masked_rows_.fetch_add(n, std::memory_order_relaxed);
    if (forward_ != nullptr) forward_->AddMaskedRows(n);
  }
  void AddPredicateDrops(uint64_t n) {
    predicate_drops_.fetch_add(n, std::memory_order_relaxed);
    if (forward_ != nullptr) forward_->AddPredicateDrops(n);
  }
  void AddMaterializedRows(uint64_t n) {
    materialized_rows_.fetch_add(n, std::memory_order_relaxed);
    if (forward_ != nullptr) forward_->AddMaterializedRows(n);
  }
  /// `bloom` marks a stripe whose min/max range admitted the probe but the
  /// bloom filter ruled it out — the pruning only the filter can do.
  void AddSkippedStripe(bool bloom) {
    stripes_skipped_.fetch_add(1, std::memory_order_relaxed);
    if (bloom) stripes_skipped_bloom_.fetch_add(1, std::memory_order_relaxed);
    if (forward_ != nullptr) forward_->AddSkippedStripe(bloom);
  }
  void AddSkippedFile() {
    files_skipped_.fetch_add(1, std::memory_order_relaxed);
    if (forward_ != nullptr) forward_->AddSkippedFile();
  }

  ScanSnapshot Snapshot() const {
    ScanSnapshot s;
    s.batches = batches_.load(std::memory_order_relaxed);
    s.rows = rows_.load(std::memory_order_relaxed);
    s.bytes = bytes_.load(std::memory_order_relaxed);
    s.passthrough_batches = passthrough_batches_.load(std::memory_order_relaxed);
    s.patched_rows = patched_rows_.load(std::memory_order_relaxed);
    s.masked_rows = masked_rows_.load(std::memory_order_relaxed);
    s.predicate_drops = predicate_drops_.load(std::memory_order_relaxed);
    s.materialized_rows = materialized_rows_.load(std::memory_order_relaxed);
    s.stripes_skipped = stripes_skipped_.load(std::memory_order_relaxed);
    s.stripes_skipped_bloom = stripes_skipped_bloom_.load(std::memory_order_relaxed);
    s.files_skipped = files_skipped_.load(std::memory_order_relaxed);
    return s;
  }

  /// Folds a snapshot delta into this meter. Parallel scans give each worker
  /// a private meter and merge them at the barrier, so per-worker counting
  /// stays contention-free and the merged totals match a serial scan.
  void Add(const ScanSnapshot& s) {
    batches_.fetch_add(s.batches, std::memory_order_relaxed);
    rows_.fetch_add(s.rows, std::memory_order_relaxed);
    bytes_.fetch_add(s.bytes, std::memory_order_relaxed);
    passthrough_batches_.fetch_add(s.passthrough_batches, std::memory_order_relaxed);
    patched_rows_.fetch_add(s.patched_rows, std::memory_order_relaxed);
    masked_rows_.fetch_add(s.masked_rows, std::memory_order_relaxed);
    predicate_drops_.fetch_add(s.predicate_drops, std::memory_order_relaxed);
    materialized_rows_.fetch_add(s.materialized_rows, std::memory_order_relaxed);
    stripes_skipped_.fetch_add(s.stripes_skipped, std::memory_order_relaxed);
    stripes_skipped_bloom_.fetch_add(s.stripes_skipped_bloom,
                                     std::memory_order_relaxed);
    files_skipped_.fetch_add(s.files_skipped, std::memory_order_relaxed);
    if (forward_ != nullptr) forward_->Add(s);
  }

  /// Zeroes every counter. Single-resetter contract: Reset must not run
  /// concurrently with another Reset or with code that reads a Snapshot
  /// delta spanning the reset (benches call it between phases, from one
  /// thread). Counter increments MAY race with Reset — they use the same
  /// relaxed ordering, so the result is merely "some increments land before
  /// the reset, some after", never a torn value. Plain `= 0` assignment
  /// would issue seq-cst stores, paying eight full fences for counters that
  /// are relaxed everywhere else. Reset never propagates to the forward
  /// target: a session zeroing its own counters must not zero the global.
  void Reset() {
    batches_.store(0, std::memory_order_relaxed);
    rows_.store(0, std::memory_order_relaxed);
    bytes_.store(0, std::memory_order_relaxed);
    passthrough_batches_.store(0, std::memory_order_relaxed);
    patched_rows_.store(0, std::memory_order_relaxed);
    masked_rows_.store(0, std::memory_order_relaxed);
    predicate_drops_.store(0, std::memory_order_relaxed);
    materialized_rows_.store(0, std::memory_order_relaxed);
    stripes_skipped_.store(0, std::memory_order_relaxed);
    stripes_skipped_bloom_.store(0, std::memory_order_relaxed);
    files_skipped_.store(0, std::memory_order_relaxed);
  }

 private:
  ScanMeter* forward_ = nullptr;
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> passthrough_batches_{0};
  std::atomic<uint64_t> patched_rows_{0};
  std::atomic<uint64_t> masked_rows_{0};
  std::atomic<uint64_t> predicate_drops_{0};
  std::atomic<uint64_t> materialized_rows_{0};
  std::atomic<uint64_t> stripes_skipped_{0};
  std::atomic<uint64_t> stripes_skipped_bloom_{0};
  std::atomic<uint64_t> files_skipped_{0};
};

/// The process-wide scan meter (scans of every table feed it, mirroring how
/// fs::SimFileSystem owns one IoMeter per instance).
inline ScanMeter& GlobalScanMeter() {
  static ScanMeter meter;
  return meter;
}

}  // namespace dtl::table
