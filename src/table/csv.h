// CSV codec for LOAD DATA INPATH: parses files staged on the simulated file
// system into typed rows (the FEP cluster's ingest path in the paper's
// Figure 1 delivers files exactly like this).
#pragma once

#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "fs/filesystem.h"

namespace dtl::table {

struct CsvOptions {
  char delimiter = ',';
  /// Unquoted token treated as NULL.
  std::string null_token = "\\N";
  bool skip_header = false;
};

/// Parses one CSV line into fields (supports "" quoting with "" escapes).
Result<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                              const CsvOptions& options);

/// Converts one textual field to a typed value per the column type.
Result<Value> ParseCsvField(const std::string& text, DataType type,
                            const std::string& column, const CsvOptions& options);

/// Reads the whole staged file and parses every line against `schema`.
Result<std::vector<Row>> ReadCsvFile(const fs::SimFileSystem* fs, const std::string& path,
                                     const Schema& schema,
                                     const CsvOptions& options = CsvOptions());

/// Renders one row as a CSV line (used by tests and tooling).
std::string FormatCsvRow(const Row& row, const CsvOptions& options = CsvOptions());

}  // namespace dtl::table
