#include "sql/binder.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>

namespace dtl::sql {

namespace {

std::string ToLower(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

bool IsAggregateName(const std::string& name) {
  return name == "sum" || name == "count" || name == "min" || name == "max" ||
         name == "avg";
}

// --- scalar evaluation kernels ---

Value EvalArithmetic(const std::string& op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (op == "/") {
    auto x = a.ToNumeric();
    auto y = b.ToNumeric();
    if (!x.ok() || !y.ok()) return Value::Null();
    if (*y == 0) return Value::Null();  // SQL: division by zero yields NULL (Hive)
    return Value::Double(*x / *y);
  }
  if (a.is_int64() && b.is_int64()) {
    const int64_t x = a.AsInt64(), y = b.AsInt64();
    if (op == "+") return Value::Int64(x + y);
    if (op == "-") return Value::Int64(x - y);
    if (op == "*") return Value::Int64(x * y);
    if (op == "%") return y == 0 ? Value::Null() : Value::Int64(x % y);
  }
  auto x = a.ToNumeric();
  auto y = b.ToNumeric();
  if (!x.ok() || !y.ok()) return Value::Null();
  if (op == "+") return Value::Double(*x + *y);
  if (op == "-") return Value::Double(*x - *y);
  if (op == "*") return Value::Double(*x * *y);
  if (op == "%") return *y == 0 ? Value::Null() : Value::Double(std::fmod(*x, *y));
  return Value::Null();
}

Value EvalComparison(const std::string& op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  const int c = a.Compare(b);
  if (op == "=") return Value::Bool(c == 0);
  if (op == "<>") return Value::Bool(c != 0);
  if (op == "<") return Value::Bool(c < 0);
  if (op == "<=") return Value::Bool(c <= 0);
  if (op == ">") return Value::Bool(c > 0);
  if (op == ">=") return Value::Bool(c >= 0);
  return Value::Null();
}

}  // namespace

bool ValueIsTrue(const Value& v) { return v.is_bool() && v.AsBool(); }

void Scope::AddTable(const std::string& qualifier, const Schema& schema) {
  const std::string q = ToLower(qualifier);
  for (const Field& f : schema.fields()) {
    columns_.push_back(ScopeColumn{q, ToLower(f.name), f.type});
  }
}

Result<size_t> Scope::Resolve(const std::string& qualifier, const std::string& name) const {
  const std::string q = ToLower(qualifier);
  const std::string n = ToLower(name);
  size_t found = 0;
  size_t index = 0;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != n) continue;
    if (!q.empty() && columns_[i].qualifier != q) continue;
    ++found;
    index = i;
  }
  if (found == 0) {
    return Status::NotFound("unknown column: " + (q.empty() ? n : q + "." + n));
  }
  if (found > 1) {
    return Status::InvalidArgument("ambiguous column: " + (q.empty() ? n : q + "." + n));
  }
  return index;
}

bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == Expr::Kind::kFuncCall && IsAggregateName(expr.func_name)) return true;
  for (const auto& a : expr.args) {
    if (ContainsAggregate(*a)) return true;
  }
  return false;
}

void CollectAggregates(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == Expr::Kind::kFuncCall && IsAggregateName(expr.func_name)) {
    for (const Expr* existing : *out) {
      if (existing->Equals(expr)) return;
    }
    out->push_back(&expr);
    return;  // aggregates do not nest
  }
  for (const auto& a : expr.args) CollectAggregates(*a, out);
}

void SplitConjuncts(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == Expr::Kind::kBinary && expr.op == "and") {
    SplitConjuncts(*expr.args[0], out);
    SplitConjuncts(*expr.args[1], out);
    return;
  }
  out->push_back(&expr);
}

namespace {

/// Compiles the node given already-compiled children (shared between the
/// scalar and post-aggregate binders).
Result<exec::ValueFn> CompileNode(const Expr& expr, std::vector<exec::ValueFn> children) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral: {
      Value v = expr.literal;
      return exec::ValueFn([v](const Row&) { return v; });
    }
    case Expr::Kind::kBinary: {
      const std::string op = expr.op;
      auto lhs = std::move(children[0]);
      auto rhs = std::move(children[1]);
      if (op == "and") {
        return exec::ValueFn([lhs, rhs](const Row& row) {
          Value a = lhs(row);
          if (a.is_bool() && !a.AsBool()) return Value::Bool(false);
          Value b = rhs(row);
          if (b.is_bool() && !b.AsBool()) return Value::Bool(false);
          if (a.is_null() || b.is_null()) return Value::Null();
          return Value::Bool(true);
        });
      }
      if (op == "or") {
        return exec::ValueFn([lhs, rhs](const Row& row) {
          Value a = lhs(row);
          if (a.is_bool() && a.AsBool()) return Value::Bool(true);
          Value b = rhs(row);
          if (b.is_bool() && b.AsBool()) return Value::Bool(true);
          if (a.is_null() || b.is_null()) return Value::Null();
          return Value::Bool(false);
        });
      }
      if (op == "+" || op == "-" || op == "*" || op == "/" || op == "%") {
        return exec::ValueFn([op, lhs, rhs](const Row& row) {
          return EvalArithmetic(op, lhs(row), rhs(row));
        });
      }
      return exec::ValueFn([op, lhs, rhs](const Row& row) {
        return EvalComparison(op, lhs(row), rhs(row));
      });
    }
    case Expr::Kind::kUnary: {
      auto child = std::move(children[0]);
      if (expr.op == "not") {
        return exec::ValueFn([child](const Row& row) {
          Value v = child(row);
          if (v.is_null()) return Value::Null();
          if (!v.is_bool()) return Value::Null();
          return Value::Bool(!v.AsBool());
        });
      }
      if (expr.op == "-") {
        return exec::ValueFn([child](const Row& row) {
          Value v = child(row);
          if (v.is_null()) return Value::Null();
          if (v.is_int64()) return Value::Int64(-v.AsInt64());
          if (v.is_double()) return Value::Double(-v.AsDouble());
          return Value::Null();
        });
      }
      return Status::InvalidArgument("unknown unary operator " + expr.op);
    }
    case Expr::Kind::kIsNull: {
      auto child = std::move(children[0]);
      const bool negated = expr.negated;
      return exec::ValueFn([child, negated](const Row& row) {
        return Value::Bool(child(row).is_null() != negated);
      });
    }
    case Expr::Kind::kInList: {
      const bool negated = expr.negated;
      auto needle = std::move(children[0]);
      std::vector<exec::ValueFn> items(std::make_move_iterator(children.begin() + 1),
                                       std::make_move_iterator(children.end()));
      return exec::ValueFn([needle, items, negated](const Row& row) {
        Value v = needle(row);
        if (v.is_null()) return Value::Null();
        bool any_null = false;
        for (const auto& item : items) {
          Value w = item(row);
          if (w.is_null()) {
            any_null = true;
            continue;
          }
          if (v.Compare(w) == 0) return Value::Bool(!negated);
        }
        if (any_null) return Value::Null();
        return Value::Bool(negated);
      });
    }
    case Expr::Kind::kFuncCall: {
      const std::string& name = expr.func_name;
      if (name == "if") {
        if (children.size() != 3) return Status::InvalidArgument("IF needs 3 arguments");
        auto cond = std::move(children[0]);
        auto then_fn = std::move(children[1]);
        auto else_fn = std::move(children[2]);
        return exec::ValueFn([cond, then_fn, else_fn](const Row& row) {
          return ValueIsTrue(cond(row)) ? then_fn(row) : else_fn(row);
        });
      }
      if (name == "coalesce") {
        if (children.empty()) {
          return Status::InvalidArgument("COALESCE needs at least 1 argument");
        }
        auto items = std::move(children);
        return exec::ValueFn([items](const Row& row) {
          for (const auto& item : items) {
            Value v = item(row);
            if (!v.is_null()) return v;
          }
          return Value::Null();
        });
      }
      if (name == "abs") {
        if (children.size() != 1) return Status::InvalidArgument("ABS needs 1 argument");
        auto child = std::move(children[0]);
        return exec::ValueFn([child](const Row& row) {
          Value v = child(row);
          if (v.is_null()) return Value::Null();
          if (v.is_int64()) return Value::Int64(std::llabs(v.AsInt64()));
          if (v.is_double()) return Value::Double(std::fabs(v.AsDouble()));
          return Value::Null();
        });
      }
      return Status::InvalidArgument("unknown function: " + name);
    }
    case Expr::Kind::kColumnRef:
      return Status::Internal("column ref must be compiled by the caller");
  }
  return Status::Internal("unreachable expression kind");
}

Result<BoundExpr> BindScalarImpl(const Expr& expr, const Scope& scope,
                                 std::set<size_t>* columns) {
  if (expr.kind == Expr::Kind::kColumnRef) {
    DTL_ASSIGN_OR_RETURN(size_t ordinal, scope.Resolve(expr.qualifier, expr.column));
    columns->insert(ordinal);
    BoundExpr out;
    out.fn = [ordinal](const Row& row) {
      return ordinal < row.size() ? row[ordinal] : Value::Null();
    };
    return out;
  }
  if (expr.kind == Expr::Kind::kFuncCall && IsAggregateName(expr.func_name)) {
    return Status::InvalidArgument("aggregate " + expr.func_name +
                                   " is not allowed in this context");
  }
  std::vector<exec::ValueFn> children;
  children.reserve(expr.args.size());
  for (const auto& arg : expr.args) {
    DTL_ASSIGN_OR_RETURN(BoundExpr child, BindScalarImpl(*arg, scope, columns));
    children.push_back(std::move(child.fn));
  }
  DTL_ASSIGN_OR_RETURN(exec::ValueFn fn, CompileNode(expr, std::move(children)));
  BoundExpr out;
  out.fn = std::move(fn);
  return out;
}

}  // namespace

Result<BoundExpr> BindScalar(const Expr& expr, const Scope& scope) {
  std::set<size_t> columns;
  DTL_ASSIGN_OR_RETURN(BoundExpr out, BindScalarImpl(expr, scope, &columns));
  out.columns.assign(columns.begin(), columns.end());
  return out;
}

Result<exec::AggSpec> BindAggregateCall(const Expr& expr, const Scope& scope) {
  if (expr.kind != Expr::Kind::kFuncCall || !IsAggregateName(expr.func_name)) {
    return Status::InvalidArgument("not an aggregate call: " + expr.ToString());
  }
  exec::AggSpec spec;
  if (expr.func_name == "count" && expr.star_arg) {
    spec.kind = exec::AggKind::kCountStar;
    return spec;
  }
  if (expr.args.size() != 1) {
    return Status::InvalidArgument(expr.func_name + " needs exactly one argument");
  }
  DTL_ASSIGN_OR_RETURN(BoundExpr input, BindScalar(*expr.args[0], scope));
  spec.input = std::move(input.fn);
  if (expr.func_name == "count") {
    spec.kind = exec::AggKind::kCount;
  } else if (expr.func_name == "sum") {
    spec.kind = exec::AggKind::kSum;
  } else if (expr.func_name == "min") {
    spec.kind = exec::AggKind::kMin;
  } else if (expr.func_name == "max") {
    spec.kind = exec::AggKind::kMax;
  } else {
    spec.kind = exec::AggKind::kAvg;
  }
  return spec;
}

Result<exec::ValueFn> BindPostAggregate(const Expr& expr,
                                        const std::vector<const Expr*>& group_exprs,
                                        const std::vector<const Expr*>& agg_exprs,
                                        const Scope& scope) {
  // Subtree equal to a group key?
  for (size_t i = 0; i < group_exprs.size(); ++i) {
    if (group_exprs[i]->Equals(expr)) {
      const size_t slot = i;
      return exec::ValueFn([slot](const Row& row) { return row[slot]; });
    }
  }
  // An aggregate call?
  for (size_t j = 0; j < agg_exprs.size(); ++j) {
    if (agg_exprs[j]->Equals(expr)) {
      const size_t slot = group_exprs.size() + j;
      return exec::ValueFn([slot](const Row& row) { return row[slot]; });
    }
  }
  if (expr.kind == Expr::Kind::kColumnRef) {
    return Status::InvalidArgument("column " + expr.ToString() +
                                   " must appear in GROUP BY or inside an aggregate");
  }
  if (expr.kind == Expr::Kind::kLiteral) {
    Value v = expr.literal;
    return exec::ValueFn([v](const Row&) { return v; });
  }
  std::vector<exec::ValueFn> children;
  children.reserve(expr.args.size());
  for (const auto& arg : expr.args) {
    DTL_ASSIGN_OR_RETURN(exec::ValueFn child,
                         BindPostAggregate(*arg, group_exprs, agg_exprs, scope));
    children.push_back(std::move(child));
  }
  return CompileNode(expr, std::move(children));
}

std::vector<table::ColumnBound> ExtractBounds(const std::vector<const Expr*>& conjuncts,
                                              const Scope& scope) {
  std::vector<table::ColumnBound> bounds;
  for (const Expr* c : conjuncts) {
    if (c->kind != Expr::Kind::kBinary) continue;
    const std::string& op = c->op;
    if (op != "=" && op != "<" && op != "<=" && op != ">" && op != ">=") continue;
    const Expr* lhs = c->args[0].get();
    const Expr* rhs = c->args[1].get();
    bool flipped = false;
    if (lhs->kind == Expr::Kind::kLiteral && rhs->kind == Expr::Kind::kColumnRef) {
      std::swap(lhs, rhs);
      flipped = true;
    }
    if (lhs->kind != Expr::Kind::kColumnRef || rhs->kind != Expr::Kind::kLiteral) continue;
    auto ordinal = scope.Resolve(lhs->qualifier, lhs->column);
    if (!ordinal.ok()) continue;
    const Value& lit = rhs->literal;
    if (lit.is_null()) continue;
    table::ColumnBound bound;
    bound.column = *ordinal;
    std::string effective = op;
    if (flipped) {
      if (op == "<") effective = ">";
      else if (op == "<=") effective = ">=";
      else if (op == ">") effective = "<";
      else if (op == ">=") effective = "<=";
    }
    if (effective == "=") {
      bound.lower = lit;
      bound.upper = lit;
    } else if (effective == "<" || effective == "<=") {
      bound.upper = lit;  // conservative: treat strict as inclusive
    } else {
      bound.lower = lit;
    }
    bounds.push_back(std::move(bound));
  }
  return bounds;
}

table::RowPredicateFn MakePredicate(exec::ValueFn fn) {
  return [fn = std::move(fn)](const Row& row) { return ValueIsTrue(fn(row)); };
}

}  // namespace dtl::sql
