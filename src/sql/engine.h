// Statement execution: plans SELECTs into exec operator trees (with
// predicate pushdown, stats-bound extraction, and hash joins/aggregates) and
// routes DML to the storage tables — DualTable DML carries the WITH RATIO
// hint into the cost model, mirroring the paper's DualTable parser that
// "will choose to generate a Hive-compatible statement ... or our UDTFs,
// based on the cost evaluator".
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "fs/filesystem.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/ast.h"
#include "table/catalog.h"

namespace dtl::obs {
class MetricsRecorder;
class QueryLog;
}  // namespace dtl::obs

namespace dtl::sql {

/// Execution knobs for parallel DualTable scans. Only order-insensitive
/// plans (single-table global aggregates) run parallel; everything else
/// keeps the serial iterator regardless of `parallelism`.
struct ExecOptions {
  /// Pool the morsel workers run on; nullptr keeps every plan serial.
  ThreadPool* pool = nullptr;
  /// Workers per parallel scan; <=1 keeps every plan serial.
  size_t parallelism = 1;
  /// Surviving stripes per scan morsel.
  size_t morsel_stripes = 1;

  // Observability hooks (all optional, not owned; must outlive the engine).
  /// Registry for the sql.statements counters and parallel-scan stats.
  obs::MetricsRegistry* metrics = nullptr;
  /// Session tracer; EXPLAIN ANALYZE requires it and the engine opens stage
  /// spans on it while it is active.
  obs::Tracer* tracer = nullptr;
  /// Session scan meter; substituted into every ScanSpec the engine builds
  /// with no explicit meter. Null keeps the process-global meter.
  table::ScanMeter* scan_meter = nullptr;
  /// Structured query log: every executed statement (except the SHOW
  /// introspection forms) appends one record with wall/modeled seconds and
  /// the registry deltas it caused.
  obs::QueryLog* query_log = nullptr;
  /// Background metrics recorder; SHOW STATS HISTOGRAMS reads its window.
  obs::MetricsRecorder* recorder = nullptr;
};

struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<Row> rows;
  uint64_t affected_rows = 0;
  /// Physical plan used by DML ("EDIT", "OVERWRITE", ...), empty otherwise.
  std::string dml_plan;
  std::string message;

  std::string ToString(size_t max_rows = 20) const;
};

/// Creates backing storage for CREATE TABLE. `indexed_columns` holds the
/// ordinals named in an INDEX (...) clause; only DualTables honor it.
using TableFactory = std::function<Result<std::shared_ptr<table::StorageTable>>(
    const std::string& name, table::TableKind kind, const Schema& schema,
    const std::vector<size_t>& indexed_columns)>;

class Engine {
 public:
  /// `fs` is required for LOAD DATA INPATH; may be null otherwise.
  Engine(table::Catalog* catalog, TableFactory factory,
         const fs::SimFileSystem* fs = nullptr)
      : catalog_(catalog), factory_(std::move(factory)), fs_(fs) {}

  /// Parses and executes one statement.
  Result<QueryResult> Execute(const std::string& sql);

  Result<QueryResult> ExecuteStatement(const Statement& stmt);

  void set_exec_options(const ExecOptions& options) { exec_ = options; }
  const ExecOptions& exec_options() const { return exec_; }

 private:
  /// The per-kind dispatch body. ExecuteStatement wraps it with query-log
  /// capture (wall clock, registry delta, modeled seconds).
  Result<QueryResult> DispatchStatement(const Statement& stmt);
  Result<QueryResult> ExecuteSelect(const SelectStmt& stmt);
  Result<QueryResult> ExecuteCreate(const CreateTableStmt& stmt);
  Result<QueryResult> ExecuteDrop(const DropTableStmt& stmt);
  Result<QueryResult> ExecuteInsert(const InsertStmt& stmt);
  Result<QueryResult> ExecuteUpdate(const UpdateStmt& stmt);
  Result<QueryResult> ExecuteDelete(const DeleteStmt& stmt);
  Result<QueryResult> ExecuteCompact(const CompactStmt& stmt);
  Result<QueryResult> ExecuteShowTables();
  Result<QueryResult> ExecuteShowStats(const ShowStatsStmt& stmt);
  Result<QueryResult> ExecuteMerge(const MergeStmt& stmt);
  Result<QueryResult> ExecuteLoad(const LoadStmt& stmt);
  Result<QueryResult> ExecuteExplain(const ExplainStmt& stmt);
  Result<QueryResult> ExecuteExplainAnalyze(const ExplainStmt& stmt);

  table::Catalog* catalog_;
  TableFactory factory_;
  const fs::SimFileSystem* fs_;
  ExecOptions exec_;
  /// Wall seconds Execute() spent parsing the most recent statement; EXPLAIN
  /// ANALYZE reports it as the retrospective `parse` leaf of the trace.
  double last_parse_seconds_ = 0;
  /// SQL text of the statement Execute() is currently running; the query log
  /// records it (empty for statements executed via ExecuteStatement directly).
  std::string last_sql_;
};

/// Coerces a value to a column type (int→double widening, int↔date).
Result<Value> CoerceValue(const Value& v, DataType type, const std::string& column);

}  // namespace dtl::sql
