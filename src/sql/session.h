// Session: the deployment facade. Owns the simulated cluster (file system,
// metadata table, cluster model, worker pool), the catalog, and the SQL
// engine; creates tables of every storage kind. This is the public entry
// point examples and benches use.
#pragma once

#include <memory>
#include <string>
#include <thread>

#include "baseline/acid_table.h"
#include "baseline/hbase_table.h"
#include "baseline/hive_table.h"
#include "common/background_scheduler.h"
#include "common/thread_pool.h"
#include "dualtable/dual_table.h"
#include "fs/cluster_model.h"
#include "fs/filesystem.h"
#include "obs/cost_audit.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/recorder.h"
#include "obs/telemetry_clock.h"
#include "obs/trace.h"
#include "sql/engine.h"
#include "table/catalog.h"
#include "table/scan_stats.h"

namespace dtl::sql {

struct SessionOptions {
  fs::FileSystemOptions fs_options;
  fs::ClusterConfig cluster;
  /// Worker threads for MapReduce-style parallel scans; 0 = hardware threads.
  size_t pool_threads = 0;
  /// Morsel workers per parallel DualTable scan. <=1 keeps every SQL plan on
  /// the serial iterator; >1 routes order-insensitive plans (single-table
  /// global aggregates) through the morsel-driven ParallelScanner.
  size_t parallelism = 1;
  /// Surviving stripes per scan morsel.
  size_t morsel_stripes = 1;
  /// Run compaction from a background scheduler thread: DualTables poll
  /// NeedsCompaction() and KV stores defer size-tiered merges, so compaction
  /// debt is paid even on write-only workloads.
  bool background_compaction = false;
  /// Wire the unified observability layer: the session-scoped metrics
  /// registry (with fs/scan/kv/scheduler views), the query tracer behind
  /// EXPLAIN ANALYZE, the cost-model decision audit, and the session scan
  /// meter. Off = none of it is connected, which is the bench baseline for
  /// the instrumentation-overhead contract (DESIGN.md §10).
  bool observability = true;
  /// Structured query-log depth and slow-statement threshold (seconds; <= 0
  /// never flags). Wired only when `observability` is on.
  size_t query_log_capacity = 256;
  double slow_query_seconds = 0.1;
  /// Metrics-recorder sample-ring depth and the window (seconds) behind the
  /// windowed percentiles in SHOW STATS HISTOGRAMS and adaptive maintenance.
  size_t recorder_capacity = 240;
  double recorder_window_seconds = 10.0;
  /// Telemetry clock for window rotation and recorder timestamps (not
  /// owned; must outlive the session). Null = process steady clock. Tests
  /// install a ManualTelemetryClock for deterministic rotation.
  obs::TelemetryClock* telemetry_clock = nullptr;
  /// Defaults applied to tables created through SQL / factory helpers.
  dual::DualTableOptions dual_defaults;
  baseline::HiveTableOptions hive_defaults;
  baseline::HBaseTableOptions hbase_defaults;
  baseline::AcidTableOptions acid_defaults;
};

class Session {
 public:
  static Result<std::unique_ptr<Session>> Create(SessionOptions options = {});

  /// Stops the background scheduler before the pool and tables go away.
  ~Session();

  /// Parses and executes one SQL statement.
  Result<QueryResult> Execute(const std::string& sql) { return engine_->Execute(sql); }

  // --- factory helpers (programmatic table creation) ---
  Result<std::shared_ptr<dual::DualTable>> CreateDualTable(
      const std::string& name, const Schema& schema,
      std::optional<dual::DualTableOptions> options = std::nullopt);
  Result<std::shared_ptr<baseline::HiveTable>> CreateHiveTable(const std::string& name,
                                                               const Schema& schema);
  Result<std::shared_ptr<baseline::HBaseTable>> CreateHBaseTable(const std::string& name,
                                                                 const Schema& schema);
  Result<std::shared_ptr<baseline::AcidTable>> CreateAcidTable(const std::string& name,
                                                               const Schema& schema);

  /// Drops the table and removes it from the catalog.
  Status DropTable(const std::string& name);

  // --- component access ---
  fs::SimFileSystem* fs() { return fs_.get(); }
  dual::MetadataTable* metadata() { return metadata_.get(); }
  fs::ClusterModel* cluster() { return &cluster_; }
  table::Catalog* catalog() { return &catalog_; }
  ThreadPool* pool() { return pool_.get(); }
  BackgroundScheduler* scheduler() { return scheduler_.get(); }
  Engine* engine() { return engine_.get(); }
  const SessionOptions& options() const { return options_; }

  // --- observability ---
  obs::MetricsRegistry* metrics() { return &metrics_; }
  obs::CostAudit* cost_audit() { return &cost_audit_; }
  obs::Tracer* tracer() { return &tracer_; }
  /// Session-scoped scan meter. Forwards into GlobalScanMeter(), so
  /// process-wide totals include this session's scans; Reset() clears only
  /// the session's own counts.
  table::ScanMeter* scan_meter() { return &scan_meter_; }
  /// One-stop session report: every registered metric (FS channel bytes,
  /// scan counters, per-table KV stats, scheduler state) plus the cost-audit
  /// record count, as `name value` text lines.
  std::string StatsDump() const;
  /// The same report as one JSON object: {"metrics":…, "cost_audit":[…]}.
  std::string StatsDumpJson() const;
  /// Prometheus-style text exposition of the current registry state.
  std::string StatsDumpPrometheus() const;
  /// The recorder's sample ring as JSON-lines (one delta object per tick);
  /// empty when observability is off.
  std::string StatsDumpJsonLines() const;
  /// Writes `dtl-stats.jsonl` (recorder samples) and `dtl-stats.prom`
  /// (Prometheus exposition) under `dir` on the HOST filesystem — the dump
  /// path benches and operators scrape.
  Status WriteStatsFiles(const std::string& dir) const;

  /// Null when observability is off.
  obs::MetricsRecorder* recorder() { return recorder_.get(); }
  obs::QueryLog* query_log() { return query_log_.get(); }

  // --- I/O metering for benches ---
  /// Remembers the current meter state; IoDelta() reports I/O since then.
  void MarkIo() { io_mark_ = fs_->meter()->Snapshot(); }
  fs::IoSnapshot IoDelta() const { return fs_->meter()->Snapshot() - io_mark_; }
  /// Modelled cluster seconds for an I/O delta (paper-scale arithmetic).
  double ModeledSeconds(const fs::IoSnapshot& delta, int num_tasks = 0) const {
    return cluster_.JobSeconds(delta, num_tasks);
  }

 private:
  explicit Session(SessionOptions options)
      : options_(std::move(options)), cluster_(options_.cluster) {}

  Result<std::shared_ptr<table::StorageTable>> MakeTable(
      const std::string& name, table::TableKind kind, const Schema& schema,
      const std::vector<size_t>& indexed_columns);

  /// Registers the labeled kv.* view family for one table's KV store. The
  /// weak_ptr keeps views of dropped tables from dangling: they read 0.
  void RegisterKvViews(const std::string& label,
                       std::function<kv::KvStore*()> store);
  /// Registers the labeled snapshot.* view family for one DualTable: total
  /// snapshots acquired, currently active, live (pinned) master generations,
  /// and the age of the oldest active snapshot.
  void RegisterSnapshotViews(const std::string& label,
                             std::function<dual::DualTable*()> table);
  void RegisterSessionViews();

  SessionOptions options_;
  std::unique_ptr<fs::SimFileSystem> fs_;
  std::unique_ptr<dual::MetadataTable> metadata_;
  fs::ClusterModel cluster_;
  table::Catalog catalog_;
  std::unique_ptr<ThreadPool> pool_;
  std::shared_ptr<BackgroundScheduler> scheduler_;
  obs::MetricsRegistry metrics_;
  obs::CostAudit cost_audit_;
  table::ScanMeter scan_meter_{&table::GlobalScanMeter()};
  obs::Tracer tracer_;
  std::unique_ptr<obs::MetricsRecorder> recorder_;
  std::unique_ptr<obs::QueryLog> query_log_;
  std::unique_ptr<Engine> engine_;
  fs::IoSnapshot io_mark_;
};

}  // namespace dtl::sql
