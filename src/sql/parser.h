// Recursive-descent parser for the HiveQL subset (grammar in ast.h).
#pragma once

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace dtl::sql {

/// Parses one statement (an optional trailing ';' is accepted).
Result<Statement> ParseStatement(const std::string& input);

/// Parses a standalone expression (used by tests).
Result<ExprPtr> ParseExpression(const std::string& input);

}  // namespace dtl::sql
