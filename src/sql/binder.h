// Name resolution and expression compilation: turns parsed Exprs into
// closures over positional rows (exec::ValueFn). Three-valued logic follows
// SQL: NULL propagates through arithmetic and comparisons; AND/OR short-
// circuit on FALSE/TRUE.
#pragma once

#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "exec/operators.h"
#include "sql/ast.h"
#include "table/spec.h"

namespace dtl::sql {

/// Column visible to expression binding.
struct ScopeColumn {
  std::string qualifier;  // table alias (lowercase)
  std::string name;       // column name (lowercase)
  DataType type = DataType::kNull;
};

/// Flattened row layout of the current FROM/JOIN chain: the row seen by
/// compiled expressions is the concatenation of all added tables.
class Scope {
 public:
  void AddTable(const std::string& qualifier, const Schema& schema);

  /// Resolves [qualifier.]name to a flat ordinal; errors on unknown or
  /// ambiguous names.
  Result<size_t> Resolve(const std::string& qualifier, const std::string& name) const;

  size_t num_columns() const { return columns_.size(); }
  const ScopeColumn& column(size_t i) const { return columns_[i]; }

 private:
  std::vector<ScopeColumn> columns_;
};

/// A compiled scalar expression plus bookkeeping for pushdown.
struct BoundExpr {
  exec::ValueFn fn;
  std::vector<size_t> columns;  // flat ordinals the expression reads
};

/// Compiles a scalar expression; fails if it contains an aggregate call.
Result<BoundExpr> BindScalar(const Expr& expr, const Scope& scope);

/// True when the expression tree contains an aggregate function call.
bool ContainsAggregate(const Expr& expr);

/// Appends the distinct aggregate calls of `expr` (structural dedup).
void CollectAggregates(const Expr& expr, std::vector<const Expr*>* out);

/// Compiles an expression evaluated AFTER aggregation, over rows laid out as
/// [group keys..., aggregate results...]. Subtrees equal to a group key or an
/// aggregate call become slot references; stray column refs are errors.
Result<exec::ValueFn> BindPostAggregate(const Expr& expr,
                                        const std::vector<const Expr*>& group_exprs,
                                        const std::vector<const Expr*>& agg_exprs,
                                        const Scope& scope);

/// Builds the exec::AggSpec for one aggregate call node.
Result<exec::AggSpec> BindAggregateCall(const Expr& expr, const Scope& scope);

/// Splits a conjunction into its top-level AND terms.
void SplitConjuncts(const Expr& expr, std::vector<const Expr*>* out);

/// Derives stats-prunable bounds from conjuncts of form `col OP literal`.
/// Ordinals are flat scope ordinals (callers re-map for per-table pushdown).
std::vector<table::ColumnBound> ExtractBounds(
    const std::vector<const Expr*>& conjuncts, const Scope& scope);

/// Wraps a compiled boolean expression as a row predicate (NULL/non-bool ⇒
/// row rejected, per SQL WHERE semantics).
table::RowPredicateFn MakePredicate(exec::ValueFn fn);

/// Truthiness used by filters: TRUE only.
bool ValueIsTrue(const Value& v);

}  // namespace dtl::sql
