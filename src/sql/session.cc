#include "sql/session.h"

namespace dtl::sql {

Result<std::unique_ptr<Session>> Session::Create(SessionOptions options) {
  auto session = std::unique_ptr<Session>(new Session(std::move(options)));
  session->fs_ = std::make_unique<fs::SimFileSystem>(session->options_.fs_options);
  DTL_ASSIGN_OR_RETURN(session->metadata_, dual::MetadataTable::Open(session->fs_.get()));
  size_t threads = session->options_.pool_threads;
  if (threads == 0) {
    threads = std::max<size_t>(2, std::thread::hardware_concurrency());
  }
  session->pool_ = std::make_unique<ThreadPool>(threads);
  // Parallel COMPACT rides the session pool for every DualTable made here.
  session->options_.dual_defaults.pool = session->pool_.get();
  if (session->options_.background_compaction) {
    session->scheduler_ = std::make_shared<BackgroundScheduler>();
    session->options_.dual_defaults.scheduler = session->scheduler_;
    session->options_.dual_defaults.background_compaction = true;
    session->options_.dual_defaults.attached_options.scheduler = session->scheduler_;
    session->options_.hbase_defaults.store_options.scheduler = session->scheduler_;
  }
  Session* self = session.get();
  session->engine_ = std::make_unique<Engine>(
      &session->catalog_,
      [self](const std::string& name, table::TableKind kind,
             const Schema& schema) { return self->MakeTable(name, kind, schema); },
      session->fs_.get());
  ExecOptions exec;
  exec.pool = session->pool_.get();
  exec.parallelism = session->options_.parallelism;
  exec.morsel_stripes = session->options_.morsel_stripes;
  session->engine_->set_exec_options(exec);
  session->MarkIo();
  return session;
}

Session::~Session() {
  // Tables in the catalog outlive the pool in member-destruction order, and
  // a background poll may submit pool work; stop the scheduler first so no
  // maintenance job is in flight while members tear down. Table destructors
  // then unregister from the stopped scheduler, which is safe.
  if (scheduler_ != nullptr) scheduler_->Shutdown();
}

Result<std::shared_ptr<table::StorageTable>> Session::MakeTable(const std::string& name,
                                                                table::TableKind kind,
                                                                const Schema& schema) {
  switch (kind) {
    case table::TableKind::kDual: {
      DTL_ASSIGN_OR_RETURN(auto t, dual::DualTable::Open(fs_.get(), metadata_.get(),
                                                         &cluster_, name, schema,
                                                         options_.dual_defaults));
      return std::shared_ptr<table::StorageTable>(std::move(t));
    }
    case table::TableKind::kHiveOrc: {
      DTL_ASSIGN_OR_RETURN(auto t, baseline::HiveTable::Open(fs_.get(), metadata_.get(),
                                                             name, schema,
                                                             options_.hive_defaults));
      return std::shared_ptr<table::StorageTable>(std::move(t));
    }
    case table::TableKind::kHiveHBase: {
      DTL_ASSIGN_OR_RETURN(
          auto t, baseline::HBaseTable::Open(fs_.get(), name, schema,
                                             options_.hbase_defaults));
      return std::shared_ptr<table::StorageTable>(std::move(t));
    }
    case table::TableKind::kAcid: {
      DTL_ASSIGN_OR_RETURN(auto t, baseline::AcidTable::Open(fs_.get(), metadata_.get(),
                                                             name, schema,
                                                             options_.acid_defaults));
      return std::shared_ptr<table::StorageTable>(std::move(t));
    }
  }
  return Status::Internal("unhandled table kind");
}

Result<std::shared_ptr<dual::DualTable>> Session::CreateDualTable(
    const std::string& name, const Schema& schema,
    std::optional<dual::DualTableOptions> options) {
  DTL_ASSIGN_OR_RETURN(auto t, dual::DualTable::Open(
                                   fs_.get(), metadata_.get(), &cluster_, name, schema,
                                   options.value_or(options_.dual_defaults)));
  DTL_RETURN_NOT_OK(catalog_.Register(name, table::TableKind::kDual, t));
  return t;
}

Result<std::shared_ptr<baseline::HiveTable>> Session::CreateHiveTable(
    const std::string& name, const Schema& schema) {
  DTL_ASSIGN_OR_RETURN(auto t, baseline::HiveTable::Open(fs_.get(), metadata_.get(), name,
                                                         schema, options_.hive_defaults));
  DTL_RETURN_NOT_OK(catalog_.Register(name, table::TableKind::kHiveOrc, t));
  return t;
}

Result<std::shared_ptr<baseline::HBaseTable>> Session::CreateHBaseTable(
    const std::string& name, const Schema& schema) {
  DTL_ASSIGN_OR_RETURN(
      auto t, baseline::HBaseTable::Open(fs_.get(), name, schema, options_.hbase_defaults));
  DTL_RETURN_NOT_OK(catalog_.Register(name, table::TableKind::kHiveHBase, t));
  return t;
}

Result<std::shared_ptr<baseline::AcidTable>> Session::CreateAcidTable(
    const std::string& name, const Schema& schema) {
  DTL_ASSIGN_OR_RETURN(auto t, baseline::AcidTable::Open(fs_.get(), metadata_.get(), name,
                                                         schema, options_.acid_defaults));
  DTL_RETURN_NOT_OK(catalog_.Register(name, table::TableKind::kAcid, t));
  return t;
}

Status Session::DropTable(const std::string& name) {
  DTL_ASSIGN_OR_RETURN(auto entry, catalog_.Lookup(name));
  DTL_RETURN_NOT_OK(entry.table->Drop());
  return catalog_.Unregister(name);
}

}  // namespace dtl::sql
