#include "sql/session.h"

#include <fstream>

#include "kv/store.h"
#include "obs/metric_names.h"
#include "orc/stripe_cache.h"

namespace dtl::sql {

Result<std::unique_ptr<Session>> Session::Create(SessionOptions options) {
  auto session = std::unique_ptr<Session>(new Session(std::move(options)));
  session->fs_ = std::make_unique<fs::SimFileSystem>(session->options_.fs_options);
  DTL_ASSIGN_OR_RETURN(session->metadata_, dual::MetadataTable::Open(session->fs_.get()));
  size_t threads = session->options_.pool_threads;
  if (threads == 0) {
    threads = std::max<size_t>(2, std::thread::hardware_concurrency());
  }
  session->pool_ = std::make_unique<ThreadPool>(threads);
  // Parallel COMPACT rides the session pool for every DualTable made here.
  session->options_.dual_defaults.pool = session->pool_.get();
  if (session->options_.background_compaction) {
    session->scheduler_ = std::make_shared<BackgroundScheduler>();
    session->options_.dual_defaults.scheduler = session->scheduler_;
    session->options_.dual_defaults.background_compaction = true;
    session->options_.dual_defaults.attached_options.scheduler = session->scheduler_;
    session->options_.hbase_defaults.store_options.scheduler = session->scheduler_;
  }
  Session* self = session.get();
  session->engine_ = std::make_unique<Engine>(
      &session->catalog_,
      [self](const std::string& name, table::TableKind kind, const Schema& schema,
             const std::vector<size_t>& indexed_columns) {
        return self->MakeTable(name, kind, schema, indexed_columns);
      },
      session->fs_.get());
  ExecOptions exec;
  exec.pool = session->pool_.get();
  exec.parallelism = session->options_.parallelism;
  exec.morsel_stripes = session->options_.morsel_stripes;
  if (session->options_.observability) {
    // Tables made through SQL or the factory helpers report DML timing
    // histograms and cost-model audit records into the session's instruments.
    session->options_.dual_defaults.metrics = &session->metrics_;
    session->options_.dual_defaults.cost_audit = &session->cost_audit_;
    session->options_.dual_defaults.telemetry_clock = session->options_.telemetry_clock;
    exec.metrics = &session->metrics_;
    exec.tracer = &session->tracer_;
    exec.scan_meter = &session->scan_meter_;
    session->tracer_.Configure(session->fs_->meter(), &session->scan_meter_,
                               &session->cluster_);
    session->RegisterSessionViews();

    obs::QueryLogOptions log_options;
    log_options.capacity = session->options_.query_log_capacity;
    log_options.slow_threshold_seconds = session->options_.slow_query_seconds;
    session->query_log_ =
        std::make_unique<obs::QueryLog>(log_options, &session->metrics_);
    obs::RecorderOptions rec_options;
    rec_options.capacity = session->options_.recorder_capacity;
    rec_options.window_us = static_cast<uint64_t>(
        session->options_.recorder_window_seconds * 1e6);
    rec_options.clock = session->options_.telemetry_clock;
    session->recorder_ =
        std::make_unique<obs::MetricsRecorder>(&session->metrics_, rec_options);
    exec.query_log = session->query_log_.get();
    exec.recorder = session->recorder_.get();
    if (session->scheduler_ != nullptr) {
      // One registry sample per scheduler round; ~Session shuts the
      // scheduler down before the recorder is destroyed.
      obs::MetricsRecorder* recorder = session->recorder_.get();
      session->scheduler_->Register("metrics-recorder",
                                    [recorder]() { recorder->Tick(); });
    }
  }
  session->engine_->set_exec_options(exec);
  session->MarkIo();
  return session;
}

void Session::RegisterSessionViews() {
  const fs::IoMeter* io = fs_->meter();
  auto io_view = [this, io](const char* name, auto read) {
    metrics_.RegisterView(name, [io, read]() -> double {
      return static_cast<double>(read(io->Snapshot()));
    });
  };
  io_view(obs::names::kFsHdfsBytesRead,
          [](const fs::IoSnapshot& s) { return s.hdfs_bytes_read; });
  io_view(obs::names::kFsHdfsBytesWritten,
          [](const fs::IoSnapshot& s) { return s.hdfs_bytes_written; });
  io_view(obs::names::kFsHdfsFilesCreated,
          [](const fs::IoSnapshot& s) { return s.hdfs_files_created; });
  io_view(obs::names::kFsHdfsSeeks,
          [](const fs::IoSnapshot& s) { return s.hdfs_seeks; });
  io_view(obs::names::kFsHbaseBytesRead,
          [](const fs::IoSnapshot& s) { return s.hbase_bytes_read; });
  io_view(obs::names::kFsHbaseBytesWritten,
          [](const fs::IoSnapshot& s) { return s.hbase_bytes_written; });
  io_view(obs::names::kFsHbaseReadOps,
          [](const fs::IoSnapshot& s) { return s.hbase_read_ops; });
  io_view(obs::names::kFsHbaseWriteOps,
          [](const fs::IoSnapshot& s) { return s.hbase_write_ops; });

  const table::ScanMeter* sm = &scan_meter_;
  auto scan_view = [this, sm](const char* name, auto read) {
    metrics_.RegisterView(name, [sm, read]() -> double {
      return static_cast<double>(read(sm->Snapshot()));
    });
  };
  scan_view(obs::names::kScanBatches,
            [](const table::ScanSnapshot& s) { return s.batches; });
  scan_view(obs::names::kScanRows, [](const table::ScanSnapshot& s) { return s.rows; });
  scan_view(obs::names::kScanBytes, [](const table::ScanSnapshot& s) { return s.bytes; });
  scan_view(obs::names::kScanPassthroughBatches,
            [](const table::ScanSnapshot& s) { return s.passthrough_batches; });
  scan_view(obs::names::kScanPatchedRows,
            [](const table::ScanSnapshot& s) { return s.patched_rows; });
  scan_view(obs::names::kScanMaskedRows,
            [](const table::ScanSnapshot& s) { return s.masked_rows; });
  scan_view(obs::names::kScanPredicateDrops,
            [](const table::ScanSnapshot& s) { return s.predicate_drops; });
  scan_view(obs::names::kScanMaterializedRows,
            [](const table::ScanSnapshot& s) { return s.materialized_rows; });
  scan_view(obs::names::kScanStripesSkipped,
            [](const table::ScanSnapshot& s) { return s.stripes_skipped; });
  scan_view(obs::names::kScanStripesSkippedBloom,
            [](const table::ScanSnapshot& s) { return s.stripes_skipped_bloom; });
  scan_view(obs::names::kScanFilesSkipped,
            [](const table::ScanSnapshot& s) { return s.files_skipped; });

  // Tables in this process share the default decoded-stripe cache unless
  // their options point elsewhere; these views expose its hit economics.
  auto cache_view = [this](const char* name, auto read) {
    metrics_.RegisterView(name, [read]() -> double {
      return static_cast<double>(read(orc::StripeCache::Default()->Stats()));
    });
  };
  cache_view(obs::names::kStripeCacheHits,
             [](const orc::StripeCacheStats& s) { return s.hits; });
  cache_view(obs::names::kStripeCacheMisses,
             [](const orc::StripeCacheStats& s) { return s.misses; });
  cache_view(obs::names::kStripeCacheBytes,
             [](const orc::StripeCacheStats& s) { return s.bytes; });
  cache_view(obs::names::kStripeCacheEntries,
             [](const orc::StripeCacheStats& s) { return s.entries; });
  cache_view(obs::names::kStripeCacheEvictions,
             [](const orc::StripeCacheStats& s) { return s.evictions; });

  if (scheduler_ != nullptr) {
    BackgroundScheduler* sched = scheduler_.get();
    metrics_.RegisterView(obs::names::kSchedulerJobs, [sched]() -> double {
      return static_cast<double>(sched->num_jobs());
    });
    metrics_.RegisterView(obs::names::kSchedulerRounds, [sched]() -> double {
      return static_cast<double>(sched->rounds_completed());
    });
    metrics_.RegisterView(obs::names::kSchedulerLastRoundSeconds,
                          [sched]() -> double { return sched->last_round_seconds(); });
  }
}

void Session::RegisterKvViews(const std::string& label,
                              std::function<kv::KvStore*()> store) {
  auto add = [&](const char* name, auto read) {
    metrics_.RegisterView(
        name,
        [store, read]() -> double {
          kv::KvStore* s = store();
          return s == nullptr ? 0.0 : static_cast<double>(read(s));
        },
        label);
  };
  add(obs::names::kKvPuts,
      [](kv::KvStore* s) { return s->stats().puts.load(std::memory_order_relaxed); });
  add(obs::names::kKvDeletes,
      [](kv::KvStore* s) { return s->stats().deletes.load(std::memory_order_relaxed); });
  add(obs::names::kKvGets,
      [](kv::KvStore* s) { return s->stats().gets.load(std::memory_order_relaxed); });
  add(obs::names::kKvFlushes,
      [](kv::KvStore* s) { return s->stats().flushes.load(std::memory_order_relaxed); });
  add(obs::names::kKvCompactions, [](kv::KvStore* s) {
    return s->stats().compactions.load(std::memory_order_relaxed);
  });
  add(obs::names::kKvWalSyncs, [](kv::KvStore* s) {
    return s->stats().wal_syncs.load(std::memory_order_relaxed);
  });
  add(obs::names::kKvApproxBytes,
      [](kv::KvStore* s) { return s->ApproximateBytes(); });
  add(obs::names::kKvApproxCells,
      [](kv::KvStore* s) { return s->ApproximateCellCount(); });
  add(obs::names::kKvSstables, [](kv::KvStore* s) { return s->NumSstables(); });
}

void Session::RegisterSnapshotViews(const std::string& label,
                                    std::function<dual::DualTable*()> table) {
  auto add = [&](const char* name, auto read) {
    metrics_.RegisterView(
        name,
        [table, read]() -> double {
          dual::DualTable* t = table();
          return t == nullptr ? 0.0 : static_cast<double>(read(t));
        },
        label);
  };
  add(obs::names::kSnapshotAcquired,
      [](dual::DualTable* t) { return t->snapshot_tracker()->acquired(); });
  add(obs::names::kSnapshotActive,
      [](dual::DualTable* t) { return t->snapshot_tracker()->active(); });
  add(obs::names::kSnapshotPinnedGenerations,
      [](dual::DualTable* t) { return t->master()->LiveGenerations(); });
  add(obs::names::kSnapshotOldestSeconds,
      [](dual::DualTable* t) { return t->snapshot_tracker()->OldestSeconds(); });

  auto index_stat = [&](const char* name, auto read) {
    metrics_.RegisterView(
        name,
        [table, read]() -> double {
          dual::DualTable* t = table();
          dual::SecondaryIndex* idx = t == nullptr ? nullptr : t->secondary_index();
          return idx == nullptr
                     ? 0.0
                     : static_cast<double>(read(idx->stats()));
        },
        label);
  };
  index_stat(obs::names::kIndexLookups, [](const dual::SecondaryIndex::Stats& s) {
    return s.lookups.load(std::memory_order_relaxed);
  });
  index_stat(obs::names::kIndexEntriesAdded, [](const dual::SecondaryIndex::Stats& s) {
    return s.entries_added.load(std::memory_order_relaxed);
  });
  index_stat(obs::names::kIndexEntriesFolded, [](const dual::SecondaryIndex::Stats& s) {
    return s.entries_folded.load(std::memory_order_relaxed);
  });
  index_stat(obs::names::kIndexCandidateRows, [](const dual::SecondaryIndex::Stats& s) {
    return s.candidate_rows.load(std::memory_order_relaxed);
  });
  index_stat(obs::names::kIndexStaleDropped, [](const dual::SecondaryIndex::Stats& s) {
    return s.stale_dropped.load(std::memory_order_relaxed);
  });
  index_stat(obs::names::kIndexRebuilds, [](const dual::SecondaryIndex::Stats& s) {
    return s.rebuilds.load(std::memory_order_relaxed);
  });
}

std::string Session::StatsDump() const {
  std::string out = metrics_.RenderText();
  out += "cost_audit.records " + std::to_string(cost_audit_.size()) + "\n";
  return out;
}

std::string Session::StatsDumpJson() const {
  return "{\"metrics\":" + metrics_.RenderJson() +
         ",\"cost_audit\":" + cost_audit_.RenderJson() + "}";
}

std::string Session::StatsDumpPrometheus() const {
  return obs::RenderPrometheusText(metrics_.Snapshot());
}

std::string Session::StatsDumpJsonLines() const {
  return recorder_ == nullptr ? std::string() : recorder_->RenderJsonLines();
}

Status Session::WriteStatsFiles(const std::string& dir) const {
  auto write = [](const std::string& path, const std::string& body) -> Status {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return Status::IoError("cannot open " + path);
    out << body;
    out.close();
    if (!out) return Status::IoError("cannot write " + path);
    return Status::OK();
  };
  DTL_RETURN_NOT_OK(write(dir + "/dtl-stats.jsonl", StatsDumpJsonLines()));
  return write(dir + "/dtl-stats.prom", StatsDumpPrometheus());
}

Session::~Session() {
  // Tables in the catalog outlive the pool in member-destruction order, and
  // a background poll may submit pool work; stop the scheduler first so no
  // maintenance job is in flight while members tear down. Table destructors
  // then unregister from the stopped scheduler, which is safe.
  if (scheduler_ != nullptr) scheduler_->Shutdown();
}

Result<std::shared_ptr<table::StorageTable>> Session::MakeTable(
    const std::string& name, table::TableKind kind, const Schema& schema,
    const std::vector<size_t>& indexed_columns) {
  switch (kind) {
    case table::TableKind::kDual: {
      dual::DualTableOptions dual_options = options_.dual_defaults;
      if (!indexed_columns.empty()) dual_options.indexed_columns = indexed_columns;
      DTL_ASSIGN_OR_RETURN(auto t, dual::DualTable::Open(fs_.get(), metadata_.get(),
                                                         &cluster_, name, schema,
                                                         dual_options));
      if (options_.observability) {
        std::weak_ptr<dual::DualTable> weak = t;
        RegisterKvViews(name, [weak]() -> kv::KvStore* {
          auto strong = weak.lock();
          return strong == nullptr ? nullptr : strong->attached()->store();
        });
        RegisterSnapshotViews(name, [weak]() -> dual::DualTable* {
          auto strong = weak.lock();
          return strong.get();
        });
      }
      return std::shared_ptr<table::StorageTable>(std::move(t));
    }
    case table::TableKind::kHiveOrc: {
      DTL_ASSIGN_OR_RETURN(auto t, baseline::HiveTable::Open(fs_.get(), metadata_.get(),
                                                             name, schema,
                                                             options_.hive_defaults));
      return std::shared_ptr<table::StorageTable>(std::move(t));
    }
    case table::TableKind::kHiveHBase: {
      DTL_ASSIGN_OR_RETURN(
          auto t, baseline::HBaseTable::Open(fs_.get(), name, schema,
                                             options_.hbase_defaults));
      if (options_.observability) {
        std::weak_ptr<baseline::HBaseTable> weak = t;
        RegisterKvViews(name, [weak]() -> kv::KvStore* {
          auto strong = weak.lock();
          return strong == nullptr ? nullptr : strong->store();
        });
      }
      return std::shared_ptr<table::StorageTable>(std::move(t));
    }
    case table::TableKind::kAcid: {
      DTL_ASSIGN_OR_RETURN(auto t, baseline::AcidTable::Open(fs_.get(), metadata_.get(),
                                                             name, schema,
                                                             options_.acid_defaults));
      return std::shared_ptr<table::StorageTable>(std::move(t));
    }
  }
  return Status::Internal("unhandled table kind");
}

Result<std::shared_ptr<dual::DualTable>> Session::CreateDualTable(
    const std::string& name, const Schema& schema,
    std::optional<dual::DualTableOptions> options) {
  DTL_ASSIGN_OR_RETURN(auto t, dual::DualTable::Open(
                                   fs_.get(), metadata_.get(), &cluster_, name, schema,
                                   options.value_or(options_.dual_defaults)));
  DTL_RETURN_NOT_OK(catalog_.Register(name, table::TableKind::kDual, t));
  if (options_.observability) {
    std::weak_ptr<dual::DualTable> weak = t;
    RegisterKvViews(name, [weak]() -> kv::KvStore* {
      auto strong = weak.lock();
      return strong == nullptr ? nullptr : strong->attached()->store();
    });
    RegisterSnapshotViews(name, [weak]() -> dual::DualTable* {
      auto strong = weak.lock();
      return strong.get();
    });
  }
  return t;
}

Result<std::shared_ptr<baseline::HiveTable>> Session::CreateHiveTable(
    const std::string& name, const Schema& schema) {
  DTL_ASSIGN_OR_RETURN(auto t, baseline::HiveTable::Open(fs_.get(), metadata_.get(), name,
                                                         schema, options_.hive_defaults));
  DTL_RETURN_NOT_OK(catalog_.Register(name, table::TableKind::kHiveOrc, t));
  return t;
}

Result<std::shared_ptr<baseline::HBaseTable>> Session::CreateHBaseTable(
    const std::string& name, const Schema& schema) {
  DTL_ASSIGN_OR_RETURN(
      auto t, baseline::HBaseTable::Open(fs_.get(), name, schema, options_.hbase_defaults));
  DTL_RETURN_NOT_OK(catalog_.Register(name, table::TableKind::kHiveHBase, t));
  if (options_.observability) {
    std::weak_ptr<baseline::HBaseTable> weak = t;
    RegisterKvViews(name, [weak]() -> kv::KvStore* {
      auto strong = weak.lock();
      return strong == nullptr ? nullptr : strong->store();
    });
  }
  return t;
}

Result<std::shared_ptr<baseline::AcidTable>> Session::CreateAcidTable(
    const std::string& name, const Schema& schema) {
  DTL_ASSIGN_OR_RETURN(auto t, baseline::AcidTable::Open(fs_.get(), metadata_.get(), name,
                                                         schema, options_.acid_defaults));
  DTL_RETURN_NOT_OK(catalog_.Register(name, table::TableKind::kAcid, t));
  return t;
}

Status Session::DropTable(const std::string& name) {
  DTL_ASSIGN_OR_RETURN(auto entry, catalog_.Lookup(name));
  DTL_RETURN_NOT_OK(entry.table->Drop());
  return catalog_.Unregister(name);
}

}  // namespace dtl::sql
