#include "sql/parser.h"

#include <unordered_set>

#include "sql/lexer.h"

namespace dtl::sql {

namespace {

/// Reserved words that terminate an alias-free identifier position.
const std::unordered_set<std::string> kKeywords = {
    "select", "from",  "where",  "group",  "by",     "having", "order",  "limit",
    "join",   "left",  "right",  "outer",  "inner",  "on",     "and",    "or",
    "not",    "in",    "is",     "null",   "as",     "asc",    "desc",   "insert",
    "into",   "values", "update", "set",   "delete", "create", "table",  "drop",
    "stored", "if",    "exists", "with",   "ratio",  "compact", "show",  "tables",
    "like",   "between", "merge", "overwrite", "load", "data", "inpath", "explain",
    "incremental",
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseTop() {
    DTL_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
    AcceptOp(";");
    if (!AtEnd()) {
      return Status::InvalidArgument("trailing input after statement near '" +
                                     Peek().text + "'");
    }
    return stmt;
  }

  Result<ExprPtr> ParseExprTop() {
    DTL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!AtEnd()) {
      return Status::InvalidArgument("trailing input after expression");
    }
    return e;
  }

 private:
  // --- token helpers ---
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  Token Advance() { return tokens_[pos_++]; }

  bool CheckKeyword(const std::string& kw) const {
    return Peek().kind == TokenKind::kIdentifier && Peek().text == kw;
  }
  bool AcceptKeyword(const std::string& kw) {
    if (!CheckKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument("expected '" + kw + "' near '" + Peek().text + "'");
    }
    return Status::OK();
  }
  bool CheckOp(const std::string& op) const {
    return Peek().kind == TokenKind::kOperator && Peek().text == op;
  }
  bool AcceptOp(const std::string& op) {
    if (!CheckOp(op)) return false;
    ++pos_;
    return true;
  }
  Status ExpectOp(const std::string& op) {
    if (!AcceptOp(op)) {
      return Status::InvalidArgument("expected '" + op + "' near '" + Peek().text + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument(std::string("expected ") + what + " near '" +
                                     Peek().text + "'");
    }
    return Advance().text;
  }

  // --- statements ---
  Result<Statement> ParseStatementInner() {
    if (CheckKeyword("select")) return ParseSelect();
    if (CheckKeyword("create")) return ParseCreate();
    if (CheckKeyword("drop")) return ParseDrop();
    if (CheckKeyword("insert")) return ParseInsert();
    if (CheckKeyword("update")) return ParseUpdate();
    if (CheckKeyword("delete")) return ParseDelete();
    if (CheckKeyword("compact")) return ParseCompact();
    if (CheckKeyword("show")) return ParseShow();
    if (CheckKeyword("merge")) return ParseMerge();
    if (CheckKeyword("load")) return ParseLoad();
    if (AcceptKeyword("explain")) {
      ExplainStmt stmt;
      // ANALYZE is contextual, not a reserved keyword, so it stays usable as
      // an identifier elsewhere.
      stmt.analyze = AcceptKeyword("analyze");
      DTL_ASSIGN_OR_RETURN(Statement inner, ParseStatementInner());
      stmt.inner = std::make_unique<Statement>(std::move(inner));
      return Statement(std::move(stmt));
    }
    return Status::InvalidArgument("unrecognized statement near '" + Peek().text + "'");
  }

  Result<Statement> ParseSelect() {
    DTL_RETURN_NOT_OK(ExpectKeyword("select"));
    SelectStmt stmt;
    // select list
    while (true) {
      SelectItem item;
      if (AcceptOp("*")) {
        item.star = true;
      } else {
        DTL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("as")) {
          DTL_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
        } else if (Peek().kind == TokenKind::kIdentifier &&
                   kKeywords.count(Peek().text) == 0) {
          item.alias = Advance().text;
        }
      }
      stmt.items.push_back(std::move(item));
      if (!AcceptOp(",")) break;
    }
    DTL_RETURN_NOT_OK(ExpectKeyword("from"));
    DTL_ASSIGN_OR_RETURN(stmt.from, ParseTableRef());
    // joins
    while (CheckKeyword("join") || CheckKeyword("left") || CheckKeyword("inner")) {
      JoinClause join;
      if (AcceptKeyword("left")) {
        AcceptKeyword("outer");
        join.left_outer = true;
      } else {
        AcceptKeyword("inner");
      }
      DTL_RETURN_NOT_OK(ExpectKeyword("join"));
      DTL_ASSIGN_OR_RETURN(join.table, ParseTableRef());
      DTL_RETURN_NOT_OK(ExpectKeyword("on"));
      DTL_ASSIGN_OR_RETURN(join.on, ParseExpr());
      stmt.joins.push_back(std::move(join));
    }
    if (AcceptKeyword("where")) {
      DTL_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (AcceptKeyword("group")) {
      DTL_RETURN_NOT_OK(ExpectKeyword("by"));
      while (true) {
        DTL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
        if (!AcceptOp(",")) break;
      }
    }
    if (AcceptKeyword("having")) {
      DTL_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (AcceptKeyword("order")) {
      DTL_RETURN_NOT_OK(ExpectKeyword("by"));
      while (true) {
        OrderItem item;
        DTL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("desc")) {
          item.ascending = false;
        } else {
          AcceptKeyword("asc");
        }
        stmt.order_by.push_back(std::move(item));
        if (!AcceptOp(",")) break;
      }
    }
    if (AcceptKeyword("limit")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Status::InvalidArgument("LIMIT expects an integer");
      }
      stmt.limit = static_cast<uint64_t>(Advance().int_value);
    }
    return Statement(std::move(stmt));
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (AcceptOp("(")) {
      // Derived table: ( SELECT ... ) alias
      DTL_ASSIGN_OR_RETURN(Statement sub, ParseSelect());
      ref.subquery = std::make_unique<SelectStmt>(std::move(std::get<SelectStmt>(sub)));
      DTL_RETURN_NOT_OK(ExpectOp(")"));
    } else {
      DTL_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier("table name"));
    }
    if (AcceptKeyword("as")) {
      DTL_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("alias"));
    } else if (Peek().kind == TokenKind::kIdentifier && kKeywords.count(Peek().text) == 0) {
      ref.alias = Advance().text;
    }
    if (ref.subquery != nullptr && ref.alias.empty()) {
      return Status::InvalidArgument("derived table requires an alias");
    }
    return ref;
  }

  Result<Statement> ParseCreate() {
    DTL_RETURN_NOT_OK(ExpectKeyword("create"));
    DTL_RETURN_NOT_OK(ExpectKeyword("table"));
    CreateTableStmt stmt;
    if (AcceptKeyword("if")) {
      DTL_RETURN_NOT_OK(ExpectKeyword("not"));
      DTL_RETURN_NOT_OK(ExpectKeyword("exists"));
      stmt.if_not_exists = true;
    }
    DTL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    DTL_RETURN_NOT_OK(ExpectOp("("));
    while (true) {
      ColumnDef def;
      DTL_ASSIGN_OR_RETURN(def.name, ExpectIdentifier("column name"));
      DTL_ASSIGN_OR_RETURN(def.type_name, ExpectIdentifier("column type"));
      stmt.columns.push_back(std::move(def));
      if (!AcceptOp(",")) break;
    }
    DTL_RETURN_NOT_OK(ExpectOp(")"));
    while (true) {
      if (AcceptKeyword("stored")) {
        DTL_RETURN_NOT_OK(ExpectKeyword("as"));
        DTL_ASSIGN_OR_RETURN(stmt.stored_as, ExpectIdentifier("storage kind"));
        continue;
      }
      if (AcceptKeyword("index")) {
        DTL_RETURN_NOT_OK(ExpectOp("("));
        while (true) {
          DTL_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("indexed column"));
          stmt.index_columns.push_back(std::move(col));
          if (!AcceptOp(",")) break;
        }
        DTL_RETURN_NOT_OK(ExpectOp(")"));
        continue;
      }
      break;
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDrop() {
    DTL_RETURN_NOT_OK(ExpectKeyword("drop"));
    DTL_RETURN_NOT_OK(ExpectKeyword("table"));
    DropTableStmt stmt;
    if (AcceptKeyword("if")) {
      DTL_RETURN_NOT_OK(ExpectKeyword("exists"));
      stmt.if_exists = true;
    }
    DTL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseInsert() {
    DTL_RETURN_NOT_OK(ExpectKeyword("insert"));
    InsertStmt stmt;
    if (AcceptKeyword("overwrite")) {
      stmt.overwrite = true;
    } else {
      DTL_RETURN_NOT_OK(ExpectKeyword("into"));
    }
    AcceptKeyword("table");  // optional HiveQL noise word
    DTL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    if (CheckKeyword("select")) {
      DTL_ASSIGN_OR_RETURN(Statement sub, ParseSelect());
      stmt.select = std::make_unique<SelectStmt>(std::move(std::get<SelectStmt>(sub)));
      return Statement(std::move(stmt));
    }
    DTL_RETURN_NOT_OK(ExpectKeyword("values"));
    while (true) {
      DTL_RETURN_NOT_OK(ExpectOp("("));
      std::vector<ExprPtr> row;
      while (true) {
        DTL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (!AcceptOp(",")) break;
      }
      DTL_RETURN_NOT_OK(ExpectOp(")"));
      stmt.rows.push_back(std::move(row));
      if (!AcceptOp(",")) break;
    }
    return Statement(std::move(stmt));
  }

  Result<std::optional<double>> ParseRatioHint() {
    if (!AcceptKeyword("with")) return std::optional<double>();
    DTL_RETURN_NOT_OK(ExpectKeyword("ratio"));
    const Token& t = Peek();
    if (t.kind == TokenKind::kFloat) {
      Advance();
      return std::optional<double>(t.double_value);
    }
    if (t.kind == TokenKind::kInteger) {
      Advance();
      return std::optional<double>(static_cast<double>(t.int_value));
    }
    return Status::InvalidArgument("WITH RATIO expects a number");
  }

  Result<Statement> ParseUpdate() {
    DTL_RETURN_NOT_OK(ExpectKeyword("update"));
    UpdateStmt stmt;
    DTL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    if (Peek().kind == TokenKind::kIdentifier && kKeywords.count(Peek().text) == 0) {
      stmt.alias = Advance().text;
    }
    DTL_RETURN_NOT_OK(ExpectKeyword("set"));
    while (true) {
      DTL_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier("column name"));
      // Accept an optional alias qualifier ("t.col").
      if (AcceptOp(".")) {
        DTL_ASSIGN_OR_RETURN(column, ExpectIdentifier("column name"));
      }
      DTL_RETURN_NOT_OK(ExpectOp("="));
      DTL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt.assignments.emplace_back(std::move(column), std::move(e));
      if (!AcceptOp(",")) break;
    }
    if (AcceptKeyword("where")) {
      DTL_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    DTL_ASSIGN_OR_RETURN(stmt.ratio_hint, ParseRatioHint());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDelete() {
    DTL_RETURN_NOT_OK(ExpectKeyword("delete"));
    DTL_RETURN_NOT_OK(ExpectKeyword("from"));
    DeleteStmt stmt;
    DTL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    if (AcceptKeyword("where")) {
      DTL_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    DTL_ASSIGN_OR_RETURN(stmt.ratio_hint, ParseRatioHint());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseCompact() {
    DTL_RETURN_NOT_OK(ExpectKeyword("compact"));
    CompactStmt stmt;
    // Both "COMPACT INCREMENTAL TABLE t" and "COMPACT TABLE t INCREMENTAL"
    // are accepted; the trailing form reads like the Hive ALTER ... COMPACT
    // modifiers.
    if (AcceptKeyword("incremental")) stmt.incremental = true;
    DTL_RETURN_NOT_OK(ExpectKeyword("table"));
    DTL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    if (AcceptKeyword("incremental")) stmt.incremental = true;
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseMerge() {
    DTL_RETURN_NOT_OK(ExpectKeyword("merge"));
    DTL_RETURN_NOT_OK(ExpectKeyword("into"));
    MergeStmt stmt;
    DTL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    DTL_RETURN_NOT_OK(ExpectKeyword("on"));
    DTL_RETURN_NOT_OK(ExpectOp("("));
    while (true) {
      DTL_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("key column"));
      stmt.key_columns.push_back(std::move(col));
      if (!AcceptOp(",")) break;
    }
    DTL_RETURN_NOT_OK(ExpectOp(")"));
    DTL_RETURN_NOT_OK(ExpectKeyword("values"));
    while (true) {
      DTL_RETURN_NOT_OK(ExpectOp("("));
      std::vector<ExprPtr> row;
      while (true) {
        DTL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (!AcceptOp(",")) break;
      }
      DTL_RETURN_NOT_OK(ExpectOp(")"));
      stmt.rows.push_back(std::move(row));
      if (!AcceptOp(",")) break;
    }
    DTL_ASSIGN_OR_RETURN(stmt.ratio_hint, ParseRatioHint());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseLoad() {
    DTL_RETURN_NOT_OK(ExpectKeyword("load"));
    DTL_RETURN_NOT_OK(ExpectKeyword("data"));
    DTL_RETURN_NOT_OK(ExpectKeyword("inpath"));
    LoadStmt stmt;
    if (Peek().kind != TokenKind::kString) {
      return Status::InvalidArgument("LOAD DATA INPATH expects a quoted path");
    }
    stmt.path = Advance().text;
    stmt.overwrite = AcceptKeyword("overwrite");
    DTL_RETURN_NOT_OK(ExpectKeyword("into"));
    DTL_RETURN_NOT_OK(ExpectKeyword("table"));
    DTL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseShow() {
    DTL_RETURN_NOT_OK(ExpectKeyword("show"));
    if (AcceptKeyword("tables")) return Statement(ShowTablesStmt{});
    // STATS / HISTOGRAMS / QUERIES are contextual (like ANALYZE), so they
    // stay usable as identifiers elsewhere.
    if (AcceptKeyword("stats")) {
      ShowStatsStmt stmt;
      if (AcceptKeyword("histograms")) {
        stmt.what = ShowStatsStmt::What::kHistograms;
      } else if (AcceptKeyword("queries")) {
        stmt.what = ShowStatsStmt::What::kQueries;
      }
      return Statement(std::move(stmt));
    }
    return Status::InvalidArgument("expected TABLES or STATS near '" + Peek().text +
                                   "'");
  }

  // --- expressions (precedence climbing) ---
  // or < and < not < comparison/in/is < additive < multiplicative < unary

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    DTL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AcceptKeyword("or")) {
      DTL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary("or", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    DTL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (AcceptKeyword("and")) {
      DTL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary("and", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("not")) {
      DTL_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return MakeUnary("not", std::move(e));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    DTL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    // IS [NOT] NULL
    if (AcceptKeyword("is")) {
      bool negated = AcceptKeyword("not");
      DTL_RETURN_NOT_OK(ExpectKeyword("null"));
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kIsNull;
      e->negated = negated;
      e->args.push_back(std::move(lhs));
      return ExprPtr(std::move(e));
    }
    // [NOT] IN (list)
    bool not_in = false;
    if (CheckKeyword("not") && Peek(1).kind == TokenKind::kIdentifier &&
        Peek(1).text == "in") {
      Advance();
      not_in = true;
    }
    if (AcceptKeyword("in")) {
      DTL_RETURN_NOT_OK(ExpectOp("("));
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kInList;
      e->negated = not_in;
      e->args.push_back(std::move(lhs));
      while (true) {
        DTL_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        e->args.push_back(std::move(item));
        if (!AcceptOp(",")) break;
      }
      DTL_RETURN_NOT_OK(ExpectOp(")"));
      return ExprPtr(std::move(e));
    }
    if (not_in) return Status::InvalidArgument("expected IN after NOT");
    // BETWEEN a AND b  →  (lhs >= a and lhs <= b)
    if (AcceptKeyword("between")) {
      DTL_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      DTL_RETURN_NOT_OK(ExpectKeyword("and"));
      DTL_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      ExprPtr ge = MakeBinary(">=", lhs->Clone(), std::move(lo));
      ExprPtr le = MakeBinary("<=", std::move(lhs), std::move(hi));
      return MakeBinary("and", std::move(ge), std::move(le));
    }
    for (const char* op : {"=", "<>", "<=", ">=", "<", ">"}) {
      if (AcceptOp(op)) {
        DTL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return MakeBinary(op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    DTL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      if (AcceptOp("+")) {
        DTL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = MakeBinary("+", std::move(lhs), std::move(rhs));
      } else if (AcceptOp("-")) {
        DTL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = MakeBinary("-", std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    DTL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      if (AcceptOp("*")) {
        DTL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = MakeBinary("*", std::move(lhs), std::move(rhs));
      } else if (AcceptOp("/")) {
        DTL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = MakeBinary("/", std::move(lhs), std::move(rhs));
      } else if (AcceptOp("%")) {
        DTL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = MakeBinary("%", std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (AcceptOp("-")) {
      DTL_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return MakeUnary("-", std::move(e));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInteger:
        Advance();
        return MakeLiteral(Value::Int64(t.int_value));
      case TokenKind::kFloat:
        Advance();
        return MakeLiteral(Value::Double(t.double_value));
      case TokenKind::kString:
        Advance();
        return MakeLiteral(Value::String(t.text));
      case TokenKind::kOperator:
        if (AcceptOp("(")) {
          DTL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          DTL_RETURN_NOT_OK(ExpectOp(")"));
          return e;
        }
        break;
      case TokenKind::kIdentifier: {
        if (t.text == "null") {
          Advance();
          return MakeLiteral(Value::Null());
        }
        if (t.text == "true" || t.text == "false") {
          Advance();
          return MakeLiteral(Value::Bool(t.text == "true"));
        }
        std::string first = Advance().text;
        // function call?
        if (AcceptOp("(")) {
          auto e = std::make_unique<Expr>();
          e->kind = Expr::Kind::kFuncCall;
          e->func_name = first;
          if (AcceptOp("*")) {
            e->star_arg = true;
            DTL_RETURN_NOT_OK(ExpectOp(")"));
            return ExprPtr(std::move(e));
          }
          if (!AcceptOp(")")) {
            while (true) {
              DTL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              e->args.push_back(std::move(arg));
              if (!AcceptOp(",")) break;
            }
            DTL_RETURN_NOT_OK(ExpectOp(")"));
          }
          return ExprPtr(std::move(e));
        }
        // qualified column?
        if (AcceptOp(".")) {
          DTL_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier("column name"));
          return MakeColumnRef(std::move(first), std::move(column));
        }
        return MakeColumnRef("", std::move(first));
      }
      case TokenKind::kEnd:
        break;
    }
    return Status::InvalidArgument("unexpected token '" + t.text + "' in expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& input) {
  DTL_ASSIGN_OR_RETURN(auto tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseTop();
}

Result<ExprPtr> ParseExpression(const std::string& input) {
  DTL_ASSIGN_OR_RETURN(auto tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseExprTop();
}

}  // namespace dtl::sql
