// Hand-rolled tokenizer for the HiveQL subset. Identifiers and keywords are
// case-insensitive (normalized to lowercase); string literals use single
// quotes with '' as the escape.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace dtl::sql {

enum class TokenKind {
  kIdentifier,  // lowercased
  kInteger,
  kFloat,
  kString,
  kOperator,  // punctuation and multi-char operators like <= <> !=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // normalized (identifiers lowercased)
  int64_t int_value = 0;
  double double_value = 0;
  size_t position = 0;  // byte offset, for error messages
};

/// Tokenizes `input`; returns InvalidArgument on malformed literals.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace dtl::sql
