// Abstract syntax tree for the HiveQL subset:
//   CREATE TABLE t (c type, ...) [STORED AS dualtable|hive|hbase|acid]
//   DROP TABLE [IF EXISTS] t
//   INSERT INTO t VALUES (...), (...)
//   SELECT items FROM t [alias] [[LEFT OUTER] JOIN t2 ON ...]*
//     [WHERE ...] [GROUP BY ...] [HAVING ...] [ORDER BY ... [ASC|DESC]]
//     [LIMIT n]
//   UPDATE t SET c = expr, ... [WHERE ...] [WITH RATIO r]
//   DELETE FROM t [WHERE ...] [WITH RATIO r]
//   COMPACT TABLE t
//   SHOW TABLES
// The WITH RATIO clause is this implementation's surface for the paper's
// "update ratio ... directly given by the designer".
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/value.h"

namespace dtl::sql {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node. One struct with a kind tag keeps the parser and binder
/// compact; invalid field combinations are rejected at bind time.
struct Expr {
  enum class Kind {
    kLiteral,    // literal
    kColumnRef,  // [qualifier.]column
    kBinary,     // args[0] op args[1]
    kUnary,      // op args[0]   (op is "-" or "not")
    kFuncCall,   // func_name(args...) — scalar or aggregate
    kIsNull,     // args[0] IS [NOT] NULL
    kInList,     // args[0] [NOT] IN (args[1..])
  };

  Kind kind = Kind::kLiteral;
  Value literal;
  std::string qualifier;    // kColumnRef
  std::string column;       // kColumnRef
  std::string op;           // kBinary/kUnary, lowercase
  std::string func_name;    // kFuncCall, lowercase
  bool star_arg = false;    // COUNT(*)
  bool negated = false;     // IS NOT NULL / NOT IN
  std::vector<ExprPtr> args;

  /// Structural equality (used to match SELECT items against GROUP BY keys).
  bool Equals(const Expr& other) const;

  /// Deep copy.
  ExprPtr Clone() const;

  std::string ToString() const;
};

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string column);
ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeUnary(std::string op, ExprPtr operand);

struct SelectItem {
  ExprPtr expr;       // null when star
  std::string alias;  // empty = derived
  bool star = false;  // SELECT *
};

struct SelectStmt;

struct TableRef {
  std::string table;
  std::string alias;  // empty = table name
  /// Derived table: FROM (SELECT ...) alias. When set, `table` is empty and
  /// `alias` is required.
  std::unique_ptr<SelectStmt> subquery;

  const std::string& EffectiveName() const { return alias.empty() ? table : alias; }
};

struct JoinClause {
  TableRef table;
  ExprPtr on;
  bool left_outer = false;
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<uint64_t> limit;
};

struct ColumnDef {
  std::string name;
  std::string type_name;
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
  std::string stored_as;  // empty = "dualtable"
  std::vector<std::string> index_columns;  // INDEX (col, ...), DualTable only
  bool if_not_exists = false;
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<ExprPtr>> rows;  // literal-expression tuples
  /// INSERT ... SELECT source (exclusive with `rows`).
  std::unique_ptr<SelectStmt> select;
  /// INSERT OVERWRITE TABLE t ... — replaces the table contents (the Hive
  /// idiom the paper's Listing 2 uses to emulate UPDATE).
  bool overwrite = false;
};

struct UpdateStmt {
  std::string table;
  std::string alias;
  std::vector<std::pair<std::string, ExprPtr>> assignments;  // column = expr
  ExprPtr where;
  std::optional<double> ratio_hint;  // WITH RATIO r
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
  std::optional<double> ratio_hint;
};

struct CompactStmt {
  std::string table;
  /// COMPACT INCREMENTAL TABLE t: rewrite only the master files whose
  /// attached delta density crosses the cost-model threshold.
  bool incremental = false;
};

struct ShowTablesStmt {};

/// SHOW STATS [HISTOGRAMS | QUERIES] — the live-telemetry SQL surface
/// (DESIGN.md §14). The bare form renders the registry's counters, gauges,
/// and views; HISTOGRAMS adds lifetime + windowed percentiles per histogram;
/// QUERIES tails the structured query log.
struct ShowStatsStmt {
  enum class What { kSummary, kHistograms, kQueries };
  What what = What::kSummary;
};

/// MERGE INTO t ON (key columns) VALUES (...), ... [WITH RATIO r]
/// Source tuples whose key matches an existing row update it (all non-key
/// columns); the rest are inserted. This is the proprietary MERGE INTO the
/// paper's grid workloads use heavily (Table I counts it separately).
struct MergeStmt {
  std::string table;
  std::vector<std::string> key_columns;
  std::vector<std::vector<ExprPtr>> rows;  // full-schema literal tuples
  std::optional<double> ratio_hint;
};

/// LOAD DATA INPATH '<csv path>' [OVERWRITE] INTO TABLE t — ingests a CSV
/// file staged on the cluster file system (the paper's LOAD operation).
struct LoadStmt {
  std::string path;
  std::string table;
  bool overwrite = false;
};

struct ExplainStmt;

using Statement = std::variant<SelectStmt, CreateTableStmt, DropTableStmt, InsertStmt,
                               UpdateStmt, DeleteStmt, CompactStmt, ShowTablesStmt,
                               ShowStatsStmt, MergeStmt, LoadStmt, ExplainStmt>;

/// EXPLAIN <statement> — describes the plan without running it. For
/// DualTable DML this surfaces the §IV cost-model evaluation (both plan
/// costs, the chosen plan, the crossover ratio).
/// EXPLAIN ANALYZE <statement> instead EXECUTES the statement under the
/// session tracer and renders the per-stage trace tree.
struct ExplainStmt {
  std::unique_ptr<Statement> inner;
  bool analyze = false;
};

}  // namespace dtl::sql
