#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace dtl::sql {

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- comments: "--" to end of line
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      tok.kind = TokenKind::kIdentifier;
      tok.text = input.substr(start, i - start);
      for (char& ch : tok.text) ch = static_cast<char>(std::tolower(ch));
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        if (i >= n || !std::isdigit(static_cast<unsigned char>(input[i]))) {
          return Status::InvalidArgument("malformed exponent at position " +
                                         std::to_string(start));
        }
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      tok.text = input.substr(start, i - start);
      if (is_float) {
        tok.kind = TokenKind::kFloat;
        tok.double_value = std::strtod(tok.text.c_str(), nullptr);
      } else {
        tok.kind = TokenKind::kInteger;
        tok.int_value = std::strtoll(tok.text.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string at position " +
                                       std::to_string(tok.position));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    // operators / punctuation, longest match first
    static const char* kTwoChar[] = {"<=", ">=", "<>", "!=", "=="};
    bool matched = false;
    for (const char* two : kTwoChar) {
      if (i + 1 < n && input[i] == two[0] && input[i + 1] == two[1]) {
        tok.kind = TokenKind::kOperator;
        tok.text = two;
        if (tok.text == "!=") tok.text = "<>";
        if (tok.text == "==") tok.text = "=";
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) {
      tokens.push_back(std::move(tok));
      continue;
    }
    static const std::string kSingle = "()+-*/%,.<>=;";
    if (kSingle.find(c) != std::string::npos) {
      tok.kind = TokenKind::kOperator;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::InvalidArgument("unexpected character '" + std::string(1, c) +
                                   "' at position " + std::to_string(i));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace dtl::sql
