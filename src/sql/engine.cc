#include "sql/engine.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "baseline/acid_table.h"
#include "common/stopwatch.h"
#include "dualtable/dual_table.h"
#include "exec/operators.h"
#include "exec/parallel_scan.h"
#include "obs/metric_names.h"
#include "obs/query_log.h"
#include "obs/recorder.h"
#include "orc/stripe_cache.h"
#include "table/csv.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace dtl::sql {

namespace {

/// Recursively resolves every column ref in `expr` and records the flat
/// ordinals; returns the first resolution error.
Status CollectColumns(const Expr& expr, const Scope& scope, std::set<size_t>* out) {
  if (expr.kind == Expr::Kind::kColumnRef) {
    DTL_ASSIGN_OR_RETURN(size_t ordinal, scope.Resolve(expr.qualifier, expr.column));
    out->insert(ordinal);
    return Status::OK();
  }
  for (const auto& a : expr.args) DTL_RETURN_NOT_OK(CollectColumns(*a, scope, out));
  return Status::OK();
}

/// Replaces column refs matching a SELECT alias with a clone of the aliased
/// expression (HiveQL allows aliases in GROUP BY / HAVING / ORDER BY).
ExprPtr SubstituteAliases(const Expr& expr, const std::vector<SelectItem>& items) {
  if (expr.kind == Expr::Kind::kColumnRef && expr.qualifier.empty()) {
    for (const SelectItem& item : items) {
      if (!item.star && !item.alias.empty() && item.alias == expr.column) {
        return item.expr->Clone();
      }
    }
  }
  ExprPtr copy = expr.Clone();
  for (auto& a : copy->args) a = SubstituteAliases(*a, items);
  return copy;
}

struct TableSlot {
  std::string qualifier;
  std::shared_ptr<table::StorageTable> storage;  // null for derived tables
  std::shared_ptr<std::vector<Row>> derived_rows;  // FROM (SELECT ...) results
  size_t offset = 0;  // first flat ordinal of this table
  size_t width = 0;
  /// Statement snapshot, acquired at bind time when `storage` is a
  /// DualTable. Every scan of this slot — serial, vectorized, parallel,
  /// split — reads from it, so one statement sees one consistent view of
  /// each table no matter what commits concurrently (repeatable read at
  /// statement granularity).
  dual::SnapshotPtr snapshot;
};

/// Schema for a derived table: column names from the subquery's output,
/// types inferred from the first non-null value per column.
Schema DeriveSchema(const QueryResult& result) {
  std::vector<Field> fields;
  for (size_t c = 0; c < result.column_names.size(); ++c) {
    DataType type = DataType::kString;
    for (const Row& row : result.rows) {
      if (c >= row.size() || row[c].is_null()) continue;
      if (row[c].is_int64()) type = DataType::kInt64;
      else if (row[c].is_double()) type = DataType::kDouble;
      else if (row[c].is_bool()) type = DataType::kBool;
      else type = DataType::kString;
      break;
    }
    fields.push_back(Field{result.column_names[c], type});
  }
  return Schema(std::move(fields));
}

/// Index of the table a flat ordinal belongs to.
size_t TableOf(const std::vector<TableSlot>& slots, size_t ordinal) {
  for (size_t i = 0; i < slots.size(); ++i) {
    if (ordinal >= slots[i].offset && ordinal < slots[i].offset + slots[i].width) return i;
  }
  return slots.size();
}

/// Scans `conjuncts` for one the secondary index can answer: `col = lit` or a
/// non-negated `col IN (lit, ...)` where `col` is indexed and every literal's
/// kind matches the column type exactly (mixed-kind comparisons fall back to
/// the scan path, which owns the coercion semantics). NULL literals never
/// match a row, so they contribute no probe. Returns false when no conjunct
/// qualifies.
bool FindIndexProbe(const std::vector<const Expr*>& conjuncts, const Scope& scope,
                    const Schema& schema, const dual::SecondaryIndex& index,
                    size_t* column, std::vector<Value>* probes) {
  for (const Expr* c : conjuncts) {
    const Expr* col_ref = nullptr;
    std::vector<const Value*> lits;
    if (c->kind == Expr::Kind::kBinary && c->op == "=") {
      const Expr* lhs = c->args[0].get();
      const Expr* rhs = c->args[1].get();
      if (lhs->kind == Expr::Kind::kLiteral && rhs->kind == Expr::Kind::kColumnRef) {
        std::swap(lhs, rhs);
      }
      if (lhs->kind == Expr::Kind::kColumnRef && rhs->kind == Expr::Kind::kLiteral) {
        col_ref = lhs;
        lits.push_back(&rhs->literal);
      }
    } else if (c->kind == Expr::Kind::kInList && !c->negated &&
               c->args[0]->kind == Expr::Kind::kColumnRef) {
      col_ref = c->args[0].get();
      for (size_t i = 1; i < c->args.size() && col_ref != nullptr; ++i) {
        if (c->args[i]->kind != Expr::Kind::kLiteral) {
          col_ref = nullptr;
        } else {
          lits.push_back(&c->args[i]->literal);
        }
      }
    }
    if (col_ref == nullptr) continue;
    auto ordinal = scope.Resolve(col_ref->qualifier, col_ref->column);
    if (!ordinal.ok() || !index.IndexesColumn(*ordinal)) continue;
    const DataType type = schema.field(*ordinal).type;
    bool kinds_ok = true;
    std::vector<Value> vals;
    for (const Value* lit : lits) {
      if (lit->is_null()) continue;
      const bool kind_match =
          (lit->is_int64() && (type == DataType::kInt64 || type == DataType::kDate)) ||
          (lit->is_string() && type == DataType::kString);
      if (!kind_match) {
        kinds_ok = false;
        break;
      }
      vals.push_back(*lit);
    }
    if (!kinds_ok) continue;
    *column = *ordinal;
    *probes = std::move(vals);
    return true;
  }
  return false;
}

/// Row-at-a-time trace decorator: charges each Next()'s wall time and the
/// emitted row to a flat child node of the execute node. Only inserted when
/// the session tracer is active, so untraced queries pay nothing.
class TracedOperator : public exec::Operator {
 public:
  TracedOperator(std::unique_ptr<exec::Operator> child, obs::TraceNode* node)
      : child_(std::move(child)), node_(node) {}
  bool Next() override {
    Stopwatch watch;
    const bool has = child_->Next();
    node_->stats.wall_seconds += watch.ElapsedSeconds();
    if (has) ++node_->stats.rows;
    return has;
  }
  const Row& row() const override { return child_->row(); }
  const Status& status() const override { return child_->status(); }

 private:
  std::unique_ptr<exec::Operator> child_;
  obs::TraceNode* node_;
};

/// Batch-pipeline analog of TracedOperator: also counts batches and the
/// decoded payload bytes flowing through the stage.
class TracedBatchOperator : public exec::BatchOperator {
 public:
  TracedBatchOperator(std::unique_ptr<exec::BatchOperator> child, obs::TraceNode* node)
      : child_(std::move(child)), node_(node) {}
  bool Next(table::RowBatch* batch) override {
    Stopwatch watch;
    const bool has = child_->Next(batch);
    node_->stats.wall_seconds += watch.ElapsedSeconds();
    if (has) {
      ++node_->stats.batches;
      node_->stats.rows += batch->size();
    }
    return has;
  }
  const Status& status() const override { return child_->status(); }

 private:
  std::unique_ptr<exec::BatchOperator> child_;
  obs::TraceNode* node_;
};

}  // namespace

Result<Value> CoerceValue(const Value& v, DataType type, const std::string& column) {
  if (v.is_null()) return v;
  switch (type) {
    case DataType::kInt64:
    case DataType::kDate:
      if (v.is_int64()) return v;
      if (v.is_double()) return Value::Int64(static_cast<int64_t>(v.AsDouble()));
      break;
    case DataType::kDouble: {
      auto n = v.ToNumeric();
      if (n.ok()) return Value::Double(*n);
      break;
    }
    case DataType::kString:
      if (v.is_string()) return v;
      return Value::String(v.ToString());
    case DataType::kBool:
      if (v.is_bool()) return v;
      break;
    case DataType::kNull:
      break;
  }
  return Status::InvalidArgument("cannot store " + v.ToString() + " into column " +
                                 column + " of type " + DataTypeName(type));
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < column_names.size(); ++i) {
    if (i > 0) out += "\t";
    out += column_names[i];
  }
  if (!column_names.empty()) out += "\n";
  for (size_t r = 0; r < rows.size() && r < max_rows; ++r) {
    out += RowToString(rows[r]);
    out += "\n";
  }
  if (rows.size() > max_rows) {
    out += "... (" + std::to_string(rows.size()) + " rows total)\n";
  }
  if (!message.empty()) {
    out += message;
    out += "\n";
  }
  return out;
}

Result<QueryResult> Engine::Execute(const std::string& sql) {
  Stopwatch parse_watch;
  DTL_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  last_parse_seconds_ = parse_watch.ElapsedSeconds();
  last_sql_ = sql;
  auto result = ExecuteStatement(stmt);
  last_sql_.clear();
  return result;
}

namespace {

const char* StatementKindName(const Statement& stmt) {
  if (std::get_if<SelectStmt>(&stmt)) return "select";
  if (std::get_if<CreateTableStmt>(&stmt)) return "create";
  if (std::get_if<DropTableStmt>(&stmt)) return "drop";
  if (std::get_if<InsertStmt>(&stmt)) return "insert";
  if (std::get_if<UpdateStmt>(&stmt)) return "update";
  if (std::get_if<DeleteStmt>(&stmt)) return "delete";
  if (std::get_if<CompactStmt>(&stmt)) return "compact";
  if (std::get_if<ShowTablesStmt>(&stmt)) return "show_tables";
  if (std::get_if<ShowStatsStmt>(&stmt)) return "show_stats";
  if (std::get_if<MergeStmt>(&stmt)) return "merge";
  if (std::get_if<LoadStmt>(&stmt)) return "load";
  if (const auto* e = std::get_if<ExplainStmt>(&stmt)) {
    return e->analyze ? "explain_analyze" : "explain";
  }
  return "unknown";
}

}  // namespace

Result<QueryResult> Engine::ExecuteStatement(const Statement& stmt) {
  obs::QueryLog* log = exec_.query_log;
  // The SHOW introspection forms are excluded: logging SHOW STATS QUERIES
  // would make the log describe itself.
  const bool capture = log != nullptr && !std::holds_alternative<ShowTablesStmt>(stmt) &&
                       !std::holds_alternative<ShowStatsStmt>(stmt);
  if (!capture) return DispatchStatement(stmt);

  // Capture reads individual meters, NOT MetricsRegistry::Snapshot(): a full
  // snapshot evaluates every view and copies every histogram, which costs
  // more than a small SELECT — the observability-overhead contract
  // (DESIGN.md §10) rules it out of the statement path.
  const table::ScanMeter* scan_meter =
      exec_.scan_meter != nullptr ? exec_.scan_meter : &table::GlobalScanMeter();
  const table::ScanSnapshot scan_before = scan_meter->Snapshot();
  const orc::StripeCacheStats cache_before = orc::StripeCache::Default()->Stats();
  const uint64_t probes_before =
      exec_.metrics != nullptr
          ? exec_.metrics->SumCounterFamily(obs::names::kIndexCounterLookups)
          : 0;
  fs::IoSnapshot io_before;
  const bool modeled = exec_.tracer != nullptr && exec_.tracer->io() != nullptr &&
                       exec_.tracer->cluster() != nullptr;
  if (modeled) io_before = exec_.tracer->io()->Snapshot();

  Stopwatch wall;
  auto result = DispatchStatement(stmt);

  obs::QueryLogRecord record;
  record.kind = StatementKindName(stmt);
  record.sql = last_sql_;
  record.wall_seconds = wall.ElapsedSeconds();
  if (modeled) {
    record.modeled_seconds =
        exec_.tracer->cluster()->JobSeconds(exec_.tracer->io()->Snapshot() - io_before);
  }
  if (result.ok()) {
    record.ok = true;
    record.rows = result->rows.size() + result->affected_rows;
  } else {
    record.ok = false;
    record.error = result.status().message();
  }
  record.bytes_decoded = (scan_meter->Snapshot() - scan_before).bytes;
  const orc::StripeCacheStats cache_after = orc::StripeCache::Default()->Stats();
  record.stripe_cache_hits = cache_after.hits - cache_before.hits;
  if (exec_.metrics != nullptr) {
    record.index_probes =
        exec_.metrics->SumCounterFamily(obs::names::kIndexCounterLookups) -
        probes_before;
    // The age is a point-in-time view, and evaluating the family invokes a
    // view callback (table lookup + tracker mutex) per registered table —
    // too dear for every fast statement. Slow statements are the ones whose
    // records get read for diagnosis, so only they pay for the deep context.
    const double slow_at = log->slow_threshold_seconds();
    if (slow_at > 0 && record.wall_seconds >= slow_at) {
      record.snapshot_age_seconds =
          exec_.metrics->MaxViewFamily(obs::names::kSnapshotOldestSeconds);
    }
  }
  log->Append(std::move(record));
  return result;
}

Result<QueryResult> Engine::DispatchStatement(const Statement& stmt) {
  // One unlabeled increment per statement plus a per-kind labeled counter
  // for the statement kinds that also open trace spans.
  if (exec_.metrics != nullptr) {
    exec_.metrics->counter(obs::names::kSqlStatements)->Inc();
  }
  auto count = [this](const char* kind) {
    if (exec_.metrics != nullptr) {
      exec_.metrics->counter(obs::names::kSqlStatements, kind)->Inc();
    }
  };
  if (const auto* s = std::get_if<SelectStmt>(&stmt)) {
    count(obs::names::kSpanSelect);
    obs::Span span(exec_.tracer, obs::names::kSpanSelect);
    return ExecuteSelect(*s);
  }
  if (const auto* s = std::get_if<CreateTableStmt>(&stmt)) return ExecuteCreate(*s);
  if (const auto* s = std::get_if<DropTableStmt>(&stmt)) return ExecuteDrop(*s);
  if (const auto* s = std::get_if<InsertStmt>(&stmt)) {
    count(obs::names::kSpanInsert);
    obs::Span span(exec_.tracer, obs::names::kSpanInsert);
    return ExecuteInsert(*s);
  }
  if (const auto* s = std::get_if<UpdateStmt>(&stmt)) {
    count(obs::names::kSpanUpdate);
    obs::Span span(exec_.tracer, obs::names::kSpanUpdate);
    return ExecuteUpdate(*s);
  }
  if (const auto* s = std::get_if<DeleteStmt>(&stmt)) {
    count(obs::names::kSpanDelete);
    obs::Span span(exec_.tracer, obs::names::kSpanDelete);
    return ExecuteDelete(*s);
  }
  if (const auto* s = std::get_if<CompactStmt>(&stmt)) {
    count(obs::names::kSpanCompact);
    obs::Span span(exec_.tracer, obs::names::kSpanCompact);
    return ExecuteCompact(*s);
  }
  if (std::get_if<ShowTablesStmt>(&stmt)) return ExecuteShowTables();
  if (const auto* s = std::get_if<ShowStatsStmt>(&stmt)) return ExecuteShowStats(*s);
  if (const auto* s = std::get_if<MergeStmt>(&stmt)) {
    count(obs::names::kSpanMerge);
    obs::Span span(exec_.tracer, obs::names::kSpanMerge);
    return ExecuteMerge(*s);
  }
  if (const auto* s = std::get_if<LoadStmt>(&stmt)) return ExecuteLoad(*s);
  if (const auto* s = std::get_if<ExplainStmt>(&stmt)) return ExecuteExplain(*s);
  return Status::Internal("unhandled statement kind");
}

Result<QueryResult> Engine::ExecuteSelect(const SelectStmt& stmt) {
  // Everything before the execute node is "bind": resolution, expression
  // binding, and plan assembly. EXPLAIN ANALYZE reports it as one leaf.
  obs::Tracer* tracer = exec_.tracer;
  const bool traced = tracer != nullptr && tracer->active();
  Stopwatch bind_watch;

  // ---- resolve tables and build the flat scope ----
  std::vector<TableSlot> slots;
  Scope scope;
  auto add_table = [&](const TableRef& ref) -> Status {
    TableSlot slot;
    slot.qualifier = ref.EffectiveName();
    slot.offset = scope.num_columns();
    if (ref.subquery != nullptr) {
      DTL_ASSIGN_OR_RETURN(QueryResult sub, ExecuteSelect(*ref.subquery));
      Schema schema = DeriveSchema(sub);
      slot.derived_rows = std::make_shared<std::vector<Row>>(std::move(sub.rows));
      slot.width = schema.num_fields();
      scope.AddTable(slot.qualifier, schema);
    } else {
      DTL_ASSIGN_OR_RETURN(auto entry, catalog_->Lookup(ref.table));
      slot.storage = entry.table;
      slot.width = entry.table->schema().num_fields();
      scope.AddTable(slot.qualifier, entry.table->schema());
      if (auto* dual = dynamic_cast<dual::DualTable*>(entry.table.get())) {
        slot.snapshot = dual->AcquireSnapshot();
      }
    }
    slots.push_back(std::move(slot));
    return Status::OK();
  };
  DTL_RETURN_NOT_OK(add_table(stmt.from));
  for (const JoinClause& join : stmt.joins) DTL_RETURN_NOT_OK(add_table(join.table));

  // ---- normalize aliased expressions ----
  ExprPtr where = stmt.where ? SubstituteAliases(*stmt.where, stmt.items) : nullptr;
  ExprPtr having = stmt.having ? SubstituteAliases(*stmt.having, stmt.items) : nullptr;
  std::vector<ExprPtr> group_by;
  for (const auto& g : stmt.group_by) group_by.push_back(SubstituteAliases(*g, stmt.items));
  std::vector<ExprPtr> order_exprs;
  for (const auto& o : stmt.order_by) {
    order_exprs.push_back(SubstituteAliases(*o.expr, stmt.items));
  }

  // ---- expand stars and collect referenced columns ----
  std::vector<const Expr*> select_exprs;
  std::vector<std::string> column_names;
  std::vector<ExprPtr> star_storage;
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      for (size_t i = 0; i < scope.num_columns(); ++i) {
        star_storage.push_back(
            MakeColumnRef(scope.column(i).qualifier, scope.column(i).name));
        select_exprs.push_back(star_storage.back().get());
        column_names.push_back(scope.column(i).name);
      }
      continue;
    }
    select_exprs.push_back(item.expr.get());
    if (!item.alias.empty()) {
      column_names.push_back(item.alias);
    } else if (item.expr->kind == Expr::Kind::kColumnRef) {
      column_names.push_back(item.expr->column);
    } else {
      column_names.push_back(item.expr->ToString());
    }
  }

  std::set<size_t> needed;
  for (const Expr* e : select_exprs) DTL_RETURN_NOT_OK(CollectColumns(*e, scope, &needed));
  if (where) DTL_RETURN_NOT_OK(CollectColumns(*where, scope, &needed));
  if (having) DTL_RETURN_NOT_OK(CollectColumns(*having, scope, &needed));
  for (const auto& g : group_by) DTL_RETURN_NOT_OK(CollectColumns(*g, scope, &needed));
  for (const auto& o : order_exprs) DTL_RETURN_NOT_OK(CollectColumns(*o, scope, &needed));
  for (const JoinClause& join : stmt.joins) {
    DTL_RETURN_NOT_OK(CollectColumns(*join.on, scope, &needed));
  }

  // ---- classify WHERE conjuncts for pushdown ----
  std::vector<const Expr*> conjuncts;
  if (where) SplitConjuncts(*where, &conjuncts);
  std::vector<std::vector<const Expr*>> pushed(slots.size());
  std::vector<const Expr*> residual;
  for (const Expr* c : conjuncts) {
    if (ContainsAggregate(*c)) {
      return Status::InvalidArgument("aggregates are not allowed in WHERE");
    }
    std::set<size_t> cols;
    DTL_RETURN_NOT_OK(CollectColumns(*c, scope, &cols));
    std::set<size_t> tables;
    for (size_t ord : cols) tables.insert(TableOf(slots, ord));
    bool pushable = tables.size() <= 1;
    size_t target = tables.empty() ? 0 : *tables.begin();
    // Pushing below the NULL-producing side of a LEFT OUTER JOIN would
    // change semantics; keep those conjuncts above the join.
    if (pushable && target > 0 && stmt.joins[target - 1].left_outer) pushable = false;
    if (pushable) {
      pushed[target].push_back(c);
    } else {
      residual.push_back(c);
    }
  }

  // ---- per-table scans ----
  auto local_scope = [&](const TableSlot& slot) {
    Scope local;
    if (slot.storage != nullptr) {
      local.AddTable(slot.qualifier, slot.storage->schema());
    } else {
      std::vector<Field> fields;
      for (size_t i = slot.offset; i < slot.offset + slot.width; ++i) {
        fields.push_back(Field{scope.column(i).name, scope.column(i).type});
      }
      local.AddTable(slot.qualifier, Schema(std::move(fields)));
    }
    return local;
  };

  // Execute node of the trace tree; operator decorators hang flat child
  // nodes off it. Created lazily right before each execution strategy so
  // untraced queries skip the whole apparatus.
  obs::TraceNode* exec_node = nullptr;
  auto traced_op = [&](std::unique_ptr<exec::Operator> op, const char* name,
                       std::string detail =
                           std::string()) -> std::unique_ptr<exec::Operator> {
    if (exec_node == nullptr) return op;
    return std::make_unique<TracedOperator>(
        std::move(op), tracer->AddNode(name, std::move(detail), exec_node));
  };
  auto traced_bop = [&](std::unique_ptr<exec::BatchOperator> op, const char* name,
                        std::string detail =
                            std::string()) -> std::unique_ptr<exec::BatchOperator> {
    if (exec_node == nullptr) return op;
    return std::make_unique<TracedBatchOperator>(
        std::move(op), tracer->AddNode(name, std::move(detail), exec_node));
  };

  auto build_scan = [&](size_t slot_index) -> Result<std::unique_ptr<exec::Operator>> {
    const TableSlot& slot = slots[slot_index];
    // Rebind pushed conjuncts against a single-table scope.
    Scope local = local_scope(slot);
    if (slot.storage == nullptr) {
      // Derived table: materialized rows, filtered in memory.
      std::unique_ptr<exec::Operator> op =
          std::make_unique<exec::RowsOperator>(*slot.derived_rows);
      if (!pushed[slot_index].empty()) {
        std::vector<exec::ValueFn> fns;
        for (const Expr* c : pushed[slot_index]) {
          DTL_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*c, local));
          fns.push_back(std::move(bound.fn));
        }
        op = std::make_unique<exec::FilterOperator>(std::move(op),
                                                    [fns](const Row& row) {
                                                      for (const auto& fn : fns) {
                                                        if (!ValueIsTrue(fn(row))) return false;
                                                      }
                                                      return true;
                                                    });
      }
      return op;
    }
    table::ScanSpec spec;
    spec.meter = exec_.scan_meter;
    for (size_t ord : needed) {
      if (TableOf(slots, ord) == slot_index) spec.projection.push_back(ord - slot.offset);
    }
    if (spec.projection.empty()) spec.projection.push_back(0);
    if (!pushed[slot_index].empty()) {
      // AND together the pushed conjuncts.
      std::vector<exec::ValueFn> fns;
      std::set<size_t> pred_cols;
      for (const Expr* c : pushed[slot_index]) {
        DTL_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*c, local));
        fns.push_back(std::move(bound.fn));
        pred_cols.insert(bound.columns.begin(), bound.columns.end());
      }
      spec.predicate = [fns](const Row& row) {
        for (const auto& fn : fns) {
          if (!ValueIsTrue(fn(row))) return false;
        }
        return true;
      };
      spec.predicate_columns.assign(pred_cols.begin(), pred_cols.end());
      spec.bounds = ExtractBounds(pushed[slot_index], local);
    }
    std::unique_ptr<table::RowIterator> it;
    if (slot.snapshot != nullptr) {
      auto* dual = static_cast<dual::DualTable*>(slot.storage.get());
      DTL_ASSIGN_OR_RETURN(it, dual->ScanAt(slot.snapshot, spec));
    } else {
      DTL_ASSIGN_OR_RETURN(it, slot.storage->Scan(spec));
    }
    return traced_op(std::make_unique<exec::ScanOperator>(std::move(it)),
                     obs::names::kOpScan, slot.qualifier);
  };

  bool has_aggregate = having != nullptr;
  for (const Expr* e : select_exprs) has_aggregate |= ContainsAggregate(*e);
  for (const auto& o : order_exprs) has_aggregate |= ContainsAggregate(*o);
  has_aggregate |= !group_by.empty();

  // ---- parallel global-aggregate fast path ----
  // Single-DualTable global aggregates (no GROUP BY/HAVING/ORDER BY) are
  // order-insensitive: morsel workers build partial AggStates, merged at one
  // barrier, and the result is identical to the serial plan. Everything else
  // stays on the serial iterators below — that is the ordering contract.
  if (exec_.parallelism > 1 && exec_.pool != nullptr && stmt.joins.empty() &&
      slots.size() == 1 && slots[0].storage != nullptr && has_aggregate &&
      group_by.empty() && having == nullptr && order_exprs.empty()) {
    auto* dual = dynamic_cast<dual::DualTable*>(slots[0].storage.get());
    if (dual != nullptr) {
      Scope local = local_scope(slots[0]);
      table::ScanSpec spec;
      spec.meter = exec_.scan_meter;
      for (size_t ord : needed) spec.projection.push_back(ord);
      if (spec.projection.empty()) spec.projection.push_back(0);
      if (!pushed[0].empty()) {
        std::vector<exec::ValueFn> fns;
        std::set<size_t> pred_cols;
        for (const Expr* c : pushed[0]) {
          DTL_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*c, local));
          fns.push_back(std::move(bound.fn));
          pred_cols.insert(bound.columns.begin(), bound.columns.end());
        }
        spec.predicate = [fns](const Row& row) {
          for (const auto& fn : fns) {
            if (!ValueIsTrue(fn(row))) return false;
          }
          return true;
        };
        spec.predicate_columns.assign(pred_cols.begin(), pred_cols.end());
        spec.bounds = ExtractBounds(pushed[0], local);
      }
      std::vector<const Expr*> agg_ptrs;
      for (const Expr* e : select_exprs) CollectAggregates(*e, &agg_ptrs);
      std::vector<exec::AggSpec> agg_specs;
      for (const Expr* a : agg_ptrs) {
        DTL_ASSIGN_OR_RETURN(exec::AggSpec aspec, BindAggregateCall(*a, scope));
        agg_specs.push_back(std::move(aspec));
      }
      exec::ParallelScanOptions popts;
      popts.pool = exec_.pool;
      popts.parallelism = exec_.parallelism;
      popts.morsel_stripes = exec_.morsel_stripes;
      popts.metrics = exec_.metrics;
      popts.snapshot = slots[0].snapshot;
      exec::ParallelScanner scanner(dual, std::move(spec), popts);
      if (traced) {
        tracer->AddLeaf(obs::names::kSpanBind, bind_watch.ElapsedSeconds());
        exec_node = tracer->AddNode(obs::names::kSpanExecute);
        tracer->AddNode(obs::names::kOpParallelScan, slots[0].qualifier, exec_node);
      }
      obs::Span exec_span(tracer, exec_node);
      DTL_ASSIGN_OR_RETURN(Row agg_row, scanner.Aggregate(agg_specs));
      // agg_row holds the finalized aggregates in agg_ptrs order — the same
      // layout HashAggregateOperator emits for a keyless aggregate, so the
      // post-aggregate binder applies unchanged.
      std::vector<const Expr*> group_ptrs;
      Row out;
      out.reserve(select_exprs.size());
      for (const Expr* e : select_exprs) {
        DTL_ASSIGN_OR_RETURN(exec::ValueFn fn,
                             BindPostAggregate(*e, group_ptrs, agg_ptrs, scope));
        out.push_back(fn(agg_row));
      }
      QueryResult result;
      result.column_names = std::move(column_names);
      if (!stmt.limit.has_value() || *stmt.limit > 0) {
        result.rows.push_back(std::move(out));
      }
      return result;
    }
  }

  // ---- index point-lookup fast path ----
  // `WHERE <indexed col> = <lit>` (or IN (...)) on a single DualTable resolves
  // through the secondary index: candidate record ids -> targeted stripe
  // fetches through the shared cache -> delta patch -> probe re-verify. All
  // pushed conjuncts still run as the residual predicate and record-id order
  // equals scan order, so the output is identical to the full-scan plan.
  if (stmt.joins.empty() && slots.size() == 1 && slots[0].storage != nullptr &&
      !has_aggregate && order_exprs.empty() && slots[0].snapshot != nullptr &&
      slots[0].snapshot->has_index && !pushed[0].empty()) {
    const TableSlot& slot = slots[0];
    auto* dual = static_cast<dual::DualTable*>(slot.storage.get());
    Scope local = local_scope(slot);
    size_t probe_column = 0;
    std::vector<Value> probes;
    if (dual->secondary_index() != nullptr &&
        FindIndexProbe(pushed[0], local, slot.storage->schema(),
                       *dual->secondary_index(), &probe_column, &probes)) {
      table::ScanSpec spec;
      spec.meter = exec_.scan_meter;
      for (size_t ord : needed) spec.projection.push_back(ord);
      if (spec.projection.empty()) spec.projection.push_back(0);
      std::vector<exec::ValueFn> fns;
      std::set<size_t> pred_cols;
      for (const Expr* c : pushed[0]) {
        DTL_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*c, local));
        fns.push_back(std::move(bound.fn));
        pred_cols.insert(bound.columns.begin(), bound.columns.end());
      }
      spec.predicate = [fns](const Row& row) {
        for (const auto& fn : fns) {
          if (!ValueIsTrue(fn(row))) return false;
        }
        return true;
      };
      spec.predicate_columns.assign(pred_cols.begin(), pred_cols.end());
      std::vector<exec::ValueFn> output_fns;
      for (const Expr* e : select_exprs) {
        DTL_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*e, scope));
        output_fns.push_back(std::move(bound.fn));
      }
      obs::TraceNode* lookup_node = nullptr;
      if (traced) {
        tracer->AddLeaf(obs::names::kSpanBind, bind_watch.ElapsedSeconds());
        exec_node = tracer->AddNode(obs::names::kSpanExecute);
        lookup_node = tracer->AddNode(obs::names::kOpIndexLookup, slot.qualifier,
                                      exec_node);
      }
      obs::Span exec_span(tracer, exec_node);
      Stopwatch lookup_watch;
      DTL_ASSIGN_OR_RETURN(auto matches,
                           dual->IndexLookupAt(slot.snapshot, probe_column, probes, spec));
      if (lookup_node != nullptr) {
        lookup_node->stats.wall_seconds += lookup_watch.ElapsedSeconds();
        lookup_node->stats.rows += matches.size();
      }
      QueryResult result;
      result.column_names = std::move(column_names);
      for (auto& [rid, row] : matches) {
        (void)rid;
        if (stmt.limit.has_value() && result.rows.size() >= *stmt.limit) break;
        Row out_row;
        out_row.reserve(output_fns.size());
        for (const auto& fn : output_fns) out_row.push_back(fn(row));
        result.rows.push_back(std::move(out_row));
      }
      return result;
    }
  }

  // ---- vectorized fast path ----
  // Single-table SELECT with no join/aggregate/order runs batch-at-a-time:
  // storage batches (predicate applied inside the scan, same contract as the
  // row path) -> vectorized projection -> vectorized limit. Rows are only
  // materialized at the result boundary. On a single-table query every WHERE
  // conjunct is pushable, so `residual` is necessarily empty here.
  if (stmt.joins.empty() && slots.size() == 1 && slots[0].storage != nullptr &&
      !has_aggregate && order_exprs.empty()) {
    const TableSlot& slot = slots[0];
    Scope local = local_scope(slot);
    table::ScanSpec spec;
    spec.meter = exec_.scan_meter;
    for (size_t ord : needed) spec.projection.push_back(ord);
    if (spec.projection.empty()) spec.projection.push_back(0);
    if (!pushed[0].empty()) {
      std::vector<exec::ValueFn> fns;
      std::set<size_t> pred_cols;
      for (const Expr* c : pushed[0]) {
        DTL_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*c, local));
        fns.push_back(std::move(bound.fn));
        pred_cols.insert(bound.columns.begin(), bound.columns.end());
      }
      spec.predicate = [fns](const Row& row) {
        for (const auto& fn : fns) {
          if (!ValueIsTrue(fn(row))) return false;
        }
        return true;
      };
      spec.predicate_columns.assign(pred_cols.begin(), pred_cols.end());
      spec.bounds = ExtractBounds(pushed[0], local);
    }
    if (traced) exec_node = tracer->AddNode(obs::names::kSpanExecute);
    std::unique_ptr<table::BatchIterator> it;
    if (slot.snapshot != nullptr) {
      auto* dual = static_cast<dual::DualTable*>(slot.storage.get());
      DTL_ASSIGN_OR_RETURN(it, dual->ScanBatchesAt(slot.snapshot, spec));
    } else {
      DTL_ASSIGN_OR_RETURN(it, slot.storage->ScanBatches(spec));
    }
    std::unique_ptr<exec::BatchOperator> bplan = traced_bop(
        std::make_unique<exec::BatchScanOperator>(std::move(it)),
        obs::names::kOpScan, slot.qualifier);
    std::vector<exec::ValueFn> output_fns;
    std::vector<int> column_refs;
    for (const Expr* e : select_exprs) {
      DTL_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*e, scope));
      column_refs.push_back(e->kind == Expr::Kind::kColumnRef && bound.columns.size() == 1
                                ? static_cast<int>(*bound.columns.begin())
                                : -1);
      output_fns.push_back(std::move(bound.fn));
    }
    bplan = traced_bop(std::make_unique<exec::BatchProjectOperator>(
                           std::move(bplan), std::move(output_fns),
                           std::move(column_refs)),
                       obs::names::kOpProject);
    if (stmt.limit.has_value()) {
      bplan = traced_bop(
          std::make_unique<exec::BatchLimitOperator>(std::move(bplan), *stmt.limit),
          obs::names::kOpLimit);
    }
    QueryResult result;
    result.column_names = std::move(column_names);
    if (traced) tracer->AddLeaf(obs::names::kSpanBind, bind_watch.ElapsedSeconds());
    {
      obs::Span exec_span(tracer, exec_node);
      DTL_ASSIGN_OR_RETURN(result.rows, exec::CollectBatches(bplan.get()));
    }
    return result;
  }

  // ---- join tree (left-deep; probe = accumulated left, build = new table) ----
  if (traced) exec_node = tracer->AddNode(obs::names::kSpanExecute);
  DTL_ASSIGN_OR_RETURN(std::unique_ptr<exec::Operator> plan, build_scan(0));
  for (size_t j = 0; j < stmt.joins.size(); ++j) {
    const JoinClause& join = stmt.joins[j];
    const TableSlot& right = slots[j + 1];
    // Split the ON condition into equi pairs (left vs right) + residual.
    std::vector<const Expr*> on_terms;
    SplitConjuncts(*join.on, &on_terms);
    std::vector<exec::ValueFn> probe_keys;
    std::vector<exec::ValueFn> build_keys;
    std::vector<const Expr*> on_residual;
    Scope right_scope = local_scope(right);
    for (const Expr* term : on_terms) {
      bool handled = false;
      if (term->kind == Expr::Kind::kBinary && term->op == "=") {
        const Expr* a = term->args[0].get();
        const Expr* b = term->args[1].get();
        std::set<size_t> ca, cb;
        Status sa = CollectColumns(*a, scope, &ca);
        Status sb = CollectColumns(*b, scope, &cb);
        if (sa.ok() && sb.ok() && !ca.empty() && !cb.empty()) {
          auto side = [&](const std::set<size_t>& cols) {
            bool all_right = true, all_left = true;
            for (size_t ord : cols) {
              if (TableOf(slots, ord) == j + 1) {
                all_left = false;
              } else if (TableOf(slots, ord) <= j) {
                all_right = false;
              }
            }
            return all_right ? 1 : (all_left ? 0 : -1);
          };
          int side_a = side(ca), side_b = side(cb);
          if (side_a == 0 && side_b == 1) {
            DTL_ASSIGN_OR_RETURN(BoundExpr pk, BindScalar(*a, scope));
            DTL_ASSIGN_OR_RETURN(BoundExpr bk, BindScalar(*b, right_scope));
            probe_keys.push_back(std::move(pk.fn));
            build_keys.push_back(std::move(bk.fn));
            handled = true;
          } else if (side_a == 1 && side_b == 0) {
            DTL_ASSIGN_OR_RETURN(BoundExpr pk, BindScalar(*b, scope));
            DTL_ASSIGN_OR_RETURN(BoundExpr bk, BindScalar(*a, right_scope));
            probe_keys.push_back(std::move(pk.fn));
            build_keys.push_back(std::move(bk.fn));
            handled = true;
          }
        }
      }
      if (!handled) on_residual.push_back(term);
    }
    if (probe_keys.empty()) {
      return Status::NotSupported("JOIN requires at least one equi condition in ON");
    }
    if (join.left_outer && !on_residual.empty()) {
      return Status::NotSupported("LEFT OUTER JOIN supports only equi ON conditions");
    }
    DTL_ASSIGN_OR_RETURN(std::unique_ptr<exec::Operator> build_op, build_scan(j + 1));
    plan = traced_op(
        std::make_unique<exec::HashJoinOperator>(
            std::move(plan), std::move(build_op), std::move(probe_keys),
            std::move(build_keys), right.width,
            join.left_outer ? exec::HashJoinOperator::Kind::kLeftOuter
                            : exec::HashJoinOperator::Kind::kInner),
        obs::names::kOpJoin, right.qualifier);
    // Residual ON terms of an inner join become a post-join filter.
    if (!on_residual.empty()) {
      std::vector<exec::ValueFn> fns;
      for (const Expr* term : on_residual) {
        DTL_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*term, scope));
        fns.push_back(std::move(bound.fn));
      }
      plan = traced_op(std::make_unique<exec::FilterOperator>(
                           std::move(plan),
                           [fns](const Row& row) {
                             for (const auto& fn : fns) {
                               if (!ValueIsTrue(fn(row))) return false;
                             }
                             return true;
                           }),
                       obs::names::kOpFilter);
    }
  }

  // ---- residual WHERE ----
  if (!residual.empty()) {
    std::vector<exec::ValueFn> fns;
    for (const Expr* c : residual) {
      DTL_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*c, scope));
      fns.push_back(std::move(bound.fn));
    }
    plan = traced_op(
        std::make_unique<exec::FilterOperator>(std::move(plan),
                                               [fns](const Row& row) {
                                                 for (const auto& fn : fns) {
                                                   if (!ValueIsTrue(fn(row))) return false;
                                                 }
                                                 return true;
                                               }),
        obs::names::kOpFilter);
  }

  // ---- aggregation / projection ----
  std::vector<exec::ValueFn> output_fns;
  if (has_aggregate) {
    std::vector<const Expr*> group_ptrs;
    for (const auto& g : group_by) group_ptrs.push_back(g.get());
    std::vector<const Expr*> agg_ptrs;
    for (const Expr* e : select_exprs) CollectAggregates(*e, &agg_ptrs);
    if (having) CollectAggregates(*having, &agg_ptrs);
    for (const auto& o : order_exprs) CollectAggregates(*o, &agg_ptrs);

    std::vector<exec::ValueFn> key_fns;
    for (const Expr* g : group_ptrs) {
      DTL_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*g, scope));
      key_fns.push_back(std::move(bound.fn));
    }
    std::vector<exec::AggSpec> agg_specs;
    for (const Expr* a : agg_ptrs) {
      DTL_ASSIGN_OR_RETURN(exec::AggSpec spec, BindAggregateCall(*a, scope));
      agg_specs.push_back(std::move(spec));
    }
    plan = traced_op(std::make_unique<exec::HashAggregateOperator>(
                         std::move(plan), std::move(key_fns), std::move(agg_specs)),
                     obs::names::kOpAggregate);
    if (having) {
      DTL_ASSIGN_OR_RETURN(exec::ValueFn fn,
                           BindPostAggregate(*having, group_ptrs, agg_ptrs, scope));
      plan = traced_op(
          std::make_unique<exec::FilterOperator>(std::move(plan), MakePredicate(fn)),
          obs::names::kOpFilter);
    }
    if (!order_exprs.empty()) {
      std::vector<exec::ValueFn> sort_keys;
      std::vector<bool> ascending;
      for (size_t i = 0; i < order_exprs.size(); ++i) {
        DTL_ASSIGN_OR_RETURN(
            exec::ValueFn fn,
            BindPostAggregate(*order_exprs[i], group_ptrs, agg_ptrs, scope));
        sort_keys.push_back(std::move(fn));
        ascending.push_back(stmt.order_by[i].ascending);
      }
      plan = traced_op(std::make_unique<exec::SortOperator>(
                           std::move(plan), std::move(sort_keys), std::move(ascending)),
                       obs::names::kOpSort);
    }
    for (const Expr* e : select_exprs) {
      DTL_ASSIGN_OR_RETURN(exec::ValueFn fn,
                           BindPostAggregate(*e, group_ptrs, agg_ptrs, scope));
      output_fns.push_back(std::move(fn));
    }
  } else {
    if (!order_exprs.empty()) {
      std::vector<exec::ValueFn> sort_keys;
      std::vector<bool> ascending;
      for (size_t i = 0; i < order_exprs.size(); ++i) {
        DTL_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*order_exprs[i], scope));
        sort_keys.push_back(std::move(bound.fn));
        ascending.push_back(stmt.order_by[i].ascending);
      }
      plan = traced_op(std::make_unique<exec::SortOperator>(
                           std::move(plan), std::move(sort_keys), std::move(ascending)),
                       obs::names::kOpSort);
    }
    for (const Expr* e : select_exprs) {
      DTL_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*e, scope));
      output_fns.push_back(std::move(bound.fn));
    }
  }
  plan = traced_op(
      std::make_unique<exec::ProjectOperator>(std::move(plan), std::move(output_fns)),
      obs::names::kOpProject);
  if (stmt.limit.has_value()) {
    plan = traced_op(std::make_unique<exec::LimitOperator>(std::move(plan), *stmt.limit),
                     obs::names::kOpLimit);
  }

  QueryResult result;
  result.column_names = std::move(column_names);
  if (traced) tracer->AddLeaf(obs::names::kSpanBind, bind_watch.ElapsedSeconds());
  {
    obs::Span exec_span(tracer, exec_node);
    DTL_ASSIGN_OR_RETURN(result.rows, exec::Collect(plan.get()));
  }
  return result;
}

Result<QueryResult> Engine::ExecuteCreate(const CreateTableStmt& stmt) {
  if (catalog_->Contains(stmt.table)) {
    if (stmt.if_not_exists) {
      QueryResult result;
      result.message = "table " + stmt.table + " already exists (skipped)";
      return result;
    }
    return Status::AlreadyExists("table already exists: " + stmt.table);
  }
  std::vector<Field> fields;
  for (const ColumnDef& def : stmt.columns) {
    DTL_ASSIGN_OR_RETURN(DataType type, ParseDataType(def.type_name));
    fields.push_back(Field{def.name, type});
  }
  Schema schema(std::move(fields));
  table::TableKind kind = table::TableKind::kDual;
  if (!stmt.stored_as.empty()) {
    DTL_ASSIGN_OR_RETURN(kind, table::ParseTableKind(stmt.stored_as));
  }
  std::vector<size_t> indexed_columns;
  if (!stmt.index_columns.empty()) {
    if (kind != table::TableKind::kDual) {
      return Status::InvalidArgument("INDEX (...) requires a dualtable");
    }
    for (const std::string& name : stmt.index_columns) {
      const std::optional<size_t> ordinal = schema.IndexOf(name);
      if (!ordinal.has_value()) {
        return Status::InvalidArgument("INDEX names unknown column: " + name);
      }
      indexed_columns.push_back(*ordinal);
    }
  }
  DTL_ASSIGN_OR_RETURN(auto storage, factory_(stmt.table, kind, schema, indexed_columns));
  DTL_RETURN_NOT_OK(catalog_->Register(stmt.table, kind, std::move(storage)));
  QueryResult result;
  result.message = "created " + std::string(table::TableKindName(kind)) + " table " +
                   stmt.table + " (" + schema.ToString() + ")";
  return result;
}

Result<QueryResult> Engine::ExecuteDrop(const DropTableStmt& stmt) {
  auto entry = catalog_->Lookup(stmt.table);
  if (!entry.ok()) {
    if (stmt.if_exists && entry.status().IsNotFound()) {
      QueryResult result;
      result.message = "table " + stmt.table + " does not exist (skipped)";
      return result;
    }
    return entry.status();
  }
  DTL_RETURN_NOT_OK(entry->table->Drop());
  DTL_RETURN_NOT_OK(catalog_->Unregister(stmt.table));
  QueryResult result;
  result.message = "dropped table " + stmt.table;
  return result;
}

Result<QueryResult> Engine::ExecuteInsert(const InsertStmt& stmt) {
  DTL_ASSIGN_OR_RETURN(auto entry, catalog_->Lookup(stmt.table));
  const Schema& schema = entry.table->schema();
  std::vector<Row> rows;

  if (stmt.select != nullptr) {
    // INSERT [OVERWRITE] ... SELECT: the paper's Listing-2 idiom.
    DTL_ASSIGN_OR_RETURN(QueryResult sub, ExecuteSelect(*stmt.select));
    rows.reserve(sub.rows.size());
    for (Row& in : sub.rows) {
      if (in.size() != schema.num_fields()) {
        return Status::InvalidArgument("INSERT SELECT arity mismatch: expected " +
                                       std::to_string(schema.num_fields()) + " columns");
      }
      Row row;
      row.reserve(in.size());
      for (size_t i = 0; i < in.size(); ++i) {
        DTL_ASSIGN_OR_RETURN(
            Value v, CoerceValue(in[i], schema.field(i).type, schema.field(i).name));
        row.push_back(std::move(v));
      }
      rows.push_back(std::move(row));
    }
  } else {
    Scope empty_scope;
    Row dummy;
    rows.reserve(stmt.rows.size());
    for (const auto& tuple : stmt.rows) {
      if (tuple.size() != schema.num_fields()) {
        return Status::InvalidArgument("INSERT arity mismatch: expected " +
                                       std::to_string(schema.num_fields()) + " values");
      }
      Row row;
      row.reserve(tuple.size());
      for (size_t i = 0; i < tuple.size(); ++i) {
        DTL_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*tuple[i], empty_scope));
        DTL_ASSIGN_OR_RETURN(Value v, CoerceValue(bound.fn(dummy), schema.field(i).type,
                                                  schema.field(i).name));
        row.push_back(std::move(v));
      }
      rows.push_back(std::move(row));
    }
  }

  if (stmt.overwrite) {
    DTL_RETURN_NOT_OK(entry.table->OverwriteRows(rows));
  } else {
    DTL_RETURN_NOT_OK(entry.table->InsertRows(rows));
  }
  QueryResult result;
  result.affected_rows = rows.size();
  result.message = std::string(stmt.overwrite ? "overwrote table with " : "inserted ") +
                   std::to_string(rows.size()) + " rows";
  return result;
}

Result<QueryResult> Engine::ExecuteUpdate(const UpdateStmt& stmt) {
  DTL_ASSIGN_OR_RETURN(auto entry, catalog_->Lookup(stmt.table));
  const Schema& schema = entry.table->schema();
  Scope scope;
  scope.AddTable(stmt.alias.empty() ? stmt.table : stmt.alias, schema);

  table::ScanSpec filter;
  filter.meter = exec_.scan_meter;
  if (stmt.where) {
    DTL_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*stmt.where, scope));
    filter.predicate = MakePredicate(bound.fn);
    filter.predicate_columns = bound.columns;
    std::vector<const Expr*> conjuncts;
    SplitConjuncts(*stmt.where, &conjuncts);
    filter.bounds = ExtractBounds(conjuncts, scope);
  }

  std::vector<table::Assignment> assignments;
  for (const auto& [column, expr] : stmt.assignments) {
    auto ordinal = schema.IndexOf(column);
    if (!ordinal.has_value()) {
      return Status::NotFound("unknown column in SET: " + column);
    }
    DTL_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*expr, scope));
    table::Assignment a;
    a.column = *ordinal;
    const DataType type = schema.field(*ordinal).type;
    const std::string name = schema.field(*ordinal).name;
    auto fn = bound.fn;
    a.compute = [fn, type, name](const Row& row) {
      auto coerced = CoerceValue(fn(row), type, name);
      return coerced.ok() ? *coerced : Value::Null();
    };
    a.input_columns = bound.columns;
    assignments.push_back(std::move(a));
  }

  Result<table::DmlResult> dml = Status::Internal("unset");
  if (entry.kind == table::TableKind::kDual) {
    auto* dual = dynamic_cast<dual::DualTable*>(entry.table.get());
    dml = dual->UpdateWithHint(filter, assignments, stmt.ratio_hint);
  } else {
    dml = entry.table->Update(filter, assignments);
  }
  DTL_RETURN_NOT_OK(dml.status());
  QueryResult result;
  result.affected_rows = dml->rows_matched;
  result.dml_plan = table::DmlPlanName(dml->plan);
  result.message = "updated " + std::to_string(dml->rows_matched) + " rows via " +
                   result.dml_plan + " plan";
  return result;
}

Result<QueryResult> Engine::ExecuteDelete(const DeleteStmt& stmt) {
  DTL_ASSIGN_OR_RETURN(auto entry, catalog_->Lookup(stmt.table));
  Scope scope;
  scope.AddTable(stmt.table, entry.table->schema());

  table::ScanSpec filter;
  filter.meter = exec_.scan_meter;
  if (stmt.where) {
    DTL_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*stmt.where, scope));
    filter.predicate = MakePredicate(bound.fn);
    filter.predicate_columns = bound.columns;
    std::vector<const Expr*> conjuncts;
    SplitConjuncts(*stmt.where, &conjuncts);
    filter.bounds = ExtractBounds(conjuncts, scope);
  }

  Result<table::DmlResult> dml = Status::Internal("unset");
  if (entry.kind == table::TableKind::kDual) {
    auto* dual = dynamic_cast<dual::DualTable*>(entry.table.get());
    dml = dual->DeleteWithHint(filter, stmt.ratio_hint);
  } else {
    dml = entry.table->Delete(filter);
  }
  DTL_RETURN_NOT_OK(dml.status());
  QueryResult result;
  result.affected_rows = dml->rows_matched;
  result.dml_plan = table::DmlPlanName(dml->plan);
  result.message = "deleted " + std::to_string(dml->rows_matched) + " rows via " +
                   result.dml_plan + " plan";
  return result;
}

Result<QueryResult> Engine::ExecuteCompact(const CompactStmt& stmt) {
  DTL_ASSIGN_OR_RETURN(auto entry, catalog_->Lookup(stmt.table));
  QueryResult result;
  if (stmt.incremental) {
    if (entry.kind != table::TableKind::kDual) {
      return Status::NotSupported("COMPACT INCREMENTAL supports dualtable tables only");
    }
    auto* dual = dynamic_cast<dual::DualTable*>(entry.table.get());
    DTL_ASSIGN_OR_RETURN(auto stats, dual->CompactIncremental(exec_.tracer));
    result.message = "incremental compact of " + stmt.table + ": " + stats.ToString();
    return result;
  }
  if (entry.kind == table::TableKind::kDual) {
    auto* dual = dynamic_cast<dual::DualTable*>(entry.table.get());
    DTL_RETURN_NOT_OK(dual->Compact());
  } else if (entry.kind == table::TableKind::kAcid) {
    auto* acid = dynamic_cast<baseline::AcidTable*>(entry.table.get());
    DTL_RETURN_NOT_OK(acid->MajorCompact());
  } else {
    return Status::NotSupported("COMPACT supports dualtable and acid tables only");
  }
  result.message = "compacted table " + stmt.table;
  return result;
}

namespace {

struct RowKeyHash {
  size_t operator()(const Row& key) const {
    size_t h = 0;
    for (const Value& v : key) h = h * 1315423911u + v.HashCode();
    return h;
  }
};
struct RowKeyEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

}  // namespace

Result<QueryResult> Engine::ExecuteMerge(const MergeStmt& stmt) {
  DTL_ASSIGN_OR_RETURN(auto entry, catalog_->Lookup(stmt.table));
  const Schema& schema = entry.table->schema();

  // Resolve key ordinals.
  std::vector<size_t> key_ordinals;
  for (const std::string& name : stmt.key_columns) {
    auto ordinal = schema.IndexOf(name);
    if (!ordinal.has_value()) return Status::NotFound("unknown key column: " + name);
    key_ordinals.push_back(*ordinal);
  }

  // Evaluate source tuples and index them by key.
  Scope empty_scope;
  Row dummy;
  auto source = std::make_shared<std::unordered_map<Row, Row, RowKeyHash, RowKeyEq>>();
  for (const auto& tuple : stmt.rows) {
    if (tuple.size() != schema.num_fields()) {
      return Status::InvalidArgument("MERGE tuple arity mismatch: expected " +
                                     std::to_string(schema.num_fields()) + " values");
    }
    Row row;
    row.reserve(tuple.size());
    for (size_t i = 0; i < tuple.size(); ++i) {
      DTL_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*tuple[i], empty_scope));
      DTL_ASSIGN_OR_RETURN(Value v, CoerceValue(bound.fn(dummy), schema.field(i).type,
                                                schema.field(i).name));
      row.push_back(std::move(v));
    }
    Row key;
    for (size_t ord : key_ordinals) key.push_back(row[ord]);
    (*source)[std::move(key)] = std::move(row);
  }

  // Pass 1: which source keys already exist in the table?
  auto matched = std::make_shared<std::unordered_map<Row, Row, RowKeyHash, RowKeyEq>>();
  {
    table::ScanSpec probe;
    probe.meter = exec_.scan_meter;
    probe.projection = key_ordinals;
    probe.predicate_columns = key_ordinals;
    auto key_ords = key_ordinals;
    probe.predicate = [source, key_ords](const Row& row) {
      Row key;
      key.reserve(key_ords.size());
      for (size_t ord : key_ords) key.push_back(row[ord]);
      return source->count(key) > 0;
    };
    DTL_ASSIGN_OR_RETURN(auto it, entry.table->Scan(probe));
    while (it->Next()) {
      Row key;
      for (size_t ord : key_ordinals) key.push_back(it->row()[ord]);
      (*matched)[std::move(key)] = Row{};
    }
    DTL_RETURN_NOT_OK(it->status());
  }

  QueryResult result;
  // Pass 2: update matched rows to the source values of their key.
  if (!matched->empty()) {
    table::ScanSpec filter;
    filter.meter = exec_.scan_meter;
    filter.predicate_columns = key_ordinals;
    auto key_ords = key_ordinals;
    filter.predicate = [matched, key_ords](const Row& row) {
      Row key;
      key.reserve(key_ords.size());
      for (size_t ord : key_ords) key.push_back(row[ord]);
      return matched->count(key) > 0;
    };
    std::vector<table::Assignment> assignments;
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      bool is_key = false;
      for (size_t ord : key_ordinals) is_key |= ord == c;
      if (is_key) continue;
      table::Assignment a;
      a.column = c;
      a.input_columns = key_ordinals;
      a.compute = [source, key_ords, c](const Row& row) {
        Row key;
        key.reserve(key_ords.size());
        for (size_t ord : key_ords) key.push_back(row[ord]);
        auto it = source->find(key);
        return it == source->end() ? Value::Null() : it->second[c];
      };
      assignments.push_back(std::move(a));
    }
    Result<table::DmlResult> dml = Status::Internal("unset");
    if (entry.kind == table::TableKind::kDual) {
      auto* dual = dynamic_cast<dual::DualTable*>(entry.table.get());
      dml = dual->UpdateWithHint(filter, assignments, stmt.ratio_hint);
    } else {
      dml = entry.table->Update(filter, assignments);
    }
    DTL_RETURN_NOT_OK(dml.status());
    result.affected_rows += dml->rows_matched;
    result.dml_plan = table::DmlPlanName(dml->plan);
  }

  // Pass 3: insert the source tuples whose keys did not match.
  std::vector<Row> inserts;
  for (const auto& [key, row] : *source) {
    if (matched->count(key) == 0) inserts.push_back(row);
  }
  if (!inserts.empty()) {
    DTL_RETURN_NOT_OK(entry.table->InsertRows(inserts));
    result.affected_rows += inserts.size();
  }
  result.message = "merged: " + std::to_string(matched->size()) + " updated, " +
                   std::to_string(inserts.size()) + " inserted";
  return result;
}

Result<QueryResult> Engine::ExecuteLoad(const LoadStmt& stmt) {
  if (fs_ == nullptr) {
    return Status::NotSupported("LOAD DATA requires a file system");
  }
  DTL_ASSIGN_OR_RETURN(auto entry, catalog_->Lookup(stmt.table));
  DTL_ASSIGN_OR_RETURN(auto rows,
                       table::ReadCsvFile(fs_, stmt.path, entry.table->schema()));
  if (stmt.overwrite) {
    DTL_RETURN_NOT_OK(entry.table->OverwriteRows(rows));
  } else {
    DTL_RETURN_NOT_OK(entry.table->InsertRows(rows));
  }
  QueryResult result;
  result.affected_rows = rows.size();
  result.message = "loaded " + std::to_string(rows.size()) + " rows from " + stmt.path;
  return result;
}

Result<QueryResult> Engine::ExecuteExplain(const ExplainStmt& stmt) {
  if (stmt.analyze) return ExecuteExplainAnalyze(stmt);
  QueryResult result;
  result.column_names = {"plan"};
  auto emit = [&result](const std::string& line) {
    result.rows.push_back(Row{Value::String(line)});
  };

  if (const auto* update = std::get_if<UpdateStmt>(stmt.inner.get())) {
    DTL_ASSIGN_OR_RETURN(auto entry, catalog_->Lookup(update->table));
    emit("UPDATE " + update->table + " (" + table::TableKindName(entry.kind) + ")");
    if (update->where) emit("  where: " + update->where->ToString());
    if (entry.kind == table::TableKind::kDual) {
      auto* dual = dynamic_cast<dual::DualTable*>(entry.table.get());
      const double ratio = update->ratio_hint.value_or(0.01);
      auto decision = dual->PreviewUpdateDecision(ratio);
      emit("  ratio: " + std::to_string(ratio) +
           (update->ratio_hint ? " (WITH RATIO hint)" : " (default/history)"));
      emit("  cost model: " + decision.ToString());
      emit("  crossover ratio: " +
           std::to_string(dual->cost_model().UpdateCrossoverRatio(
               dual->master()->TotalBytes())));
    } else {
      emit("  plan: full INSERT OVERWRITE rewrite");
    }
    return result;
  }
  if (const auto* del = std::get_if<DeleteStmt>(stmt.inner.get())) {
    DTL_ASSIGN_OR_RETURN(auto entry, catalog_->Lookup(del->table));
    emit("DELETE FROM " + del->table + " (" + table::TableKindName(entry.kind) + ")");
    if (del->where) emit("  where: " + del->where->ToString());
    if (entry.kind == table::TableKind::kDual) {
      auto* dual = dynamic_cast<dual::DualTable*>(entry.table.get());
      const double ratio = del->ratio_hint.value_or(0.01);
      auto decision = dual->PreviewDeleteDecision(ratio);
      emit("  ratio: " + std::to_string(ratio));
      emit("  cost model: " + decision.ToString());
    } else {
      emit("  plan: full INSERT OVERWRITE rewrite");
    }
    return result;
  }
  if (const auto* select = std::get_if<SelectStmt>(stmt.inner.get())) {
    auto describe_ref = [&](const TableRef& ref) -> Result<std::string> {
      if (ref.subquery != nullptr) return "(subquery) " + ref.EffectiveName();
      DTL_ASSIGN_OR_RETURN(auto entry, catalog_->Lookup(ref.table));
      return ref.table + " (" + table::TableKindName(entry.kind) +
             (entry.kind == table::TableKind::kDual ? ", UNION READ scan)" : ")");
    };
    DTL_ASSIGN_OR_RETURN(std::string from, describe_ref(select->from));
    emit("SELECT: scan " + from);
    for (const JoinClause& join : select->joins) {
      DTL_ASSIGN_OR_RETURN(std::string right, describe_ref(join.table));
      emit(std::string("  ") + (join.left_outer ? "left outer " : "") + "hash join " +
           right + " on " + join.on->ToString());
    }
    if (select->where) {
      std::vector<const Expr*> conjuncts;
      SplitConjuncts(*select->where, &conjuncts);
      emit("  filter: " + std::to_string(conjuncts.size()) +
           " conjunct(s), single-table terms pushed into scans");
      // Surface the index point-lookup route when the single-table plan
      // would take it (same detection the executor runs).
      if (select->joins.empty() && select->from.subquery == nullptr) {
        auto entry = catalog_->Lookup(select->from.table);
        if (entry.ok() && entry->kind == table::TableKind::kDual) {
          auto* dual = dynamic_cast<dual::DualTable*>(entry->table.get());
          if (dual != nullptr && dual->secondary_index() != nullptr) {
            Scope probe_scope;
            probe_scope.AddTable(select->from.EffectiveName(), entry->table->schema());
            size_t col = 0;
            std::vector<Value> probes;
            if (FindIndexProbe(conjuncts, probe_scope, entry->table->schema(),
                               *dual->secondary_index(), &col, &probes)) {
              emit("  index lookup: column '" +
                   entry->table->schema().field(col).name + "', " +
                   std::to_string(probes.size()) + " probe(s)");
            }
          }
        }
      }
    }
    if (!select->group_by.empty() || select->having) emit("  hash aggregate");
    if (!select->order_by.empty()) emit("  sort");
    if (select->limit) emit("  limit " + std::to_string(*select->limit));
    return result;
  }
  if (const auto* compact = std::get_if<CompactStmt>(stmt.inner.get())) {
    DTL_ASSIGN_OR_RETURN(auto entry, catalog_->Lookup(compact->table));
    if (compact->incremental && entry.kind == table::TableKind::kDual) {
      auto* dual = dynamic_cast<dual::DualTable*>(entry.table.get());
      emit("COMPACT INCREMENTAL " + compact->table);
      DTL_ASSIGN_OR_RETURN(auto plan, dual->PreviewIncrementalCompaction());
      std::istringstream lines(plan.ToString());
      for (std::string line; std::getline(lines, line);) emit("  " + line);
      return result;
    }
    emit(std::string(compact->incremental ? "COMPACT INCREMENTAL " : "COMPACT ") +
         compact->table + " (" + table::TableKindName(entry.kind) + "): full rewrite");
    return result;
  }
  emit("statement executes directly (no plan choices)");
  return result;
}

Result<QueryResult> Engine::ExecuteExplainAnalyze(const ExplainStmt& stmt) {
  obs::Tracer* tracer = exec_.tracer;
  if (tracer == nullptr) {
    return Status::NotSupported("EXPLAIN ANALYZE requires a session tracer");
  }
  if (tracer->active()) {
    return Status::InvalidArgument("EXPLAIN ANALYZE cannot nest inside a traced query");
  }
  tracer->Begin(obs::names::kSpanQuery);
  Result<QueryResult> inner = Status::Internal("unset");
  {
    // Adopt the root so the whole statement's wall/io/scan lands on `query`.
    obs::Span root_span(tracer, tracer->current());
    // Execute() already parsed the statement; report that as a leaf.
    tracer->AddLeaf(obs::names::kSpanParse, last_parse_seconds_);
    inner = ExecuteStatement(*stmt.inner);
  }
  obs::Trace trace = tracer->End();
  DTL_RETURN_NOT_OK(inner.status());

  QueryResult result;
  result.column_names = {"analyze"};
  for (const std::string& line : trace.RenderTextLines()) {
    result.rows.push_back(Row{Value::String(line)});
  }
  result.affected_rows = inner->affected_rows;
  result.dml_plan = inner->dml_plan;
  result.message = inner->message;
  return result;
}

Result<QueryResult> Engine::ExecuteShowTables() {
  QueryResult result;
  result.column_names = {"table_name", "storage"};
  for (const std::string& name : catalog_->TableNames()) {
    auto entry = catalog_->Lookup(name);
    if (!entry.ok()) continue;
    result.rows.push_back(
        Row{Value::String(name), Value::String(table::TableKindName(entry->kind))});
  }
  return result;
}

Result<QueryResult> Engine::ExecuteShowStats(const ShowStatsStmt& stmt) {
  QueryResult result;
  if (stmt.what == ShowStatsStmt::What::kQueries) {
    if (exec_.query_log == nullptr) {
      return Status::InvalidArgument(
          "SHOW STATS QUERIES requires the session query log (observability on)");
    }
    result.column_names = {"kind",       "wall_seconds",  "modeled_seconds",
                           "rows",       "bytes_decoded", "stripe_cache_hits",
                           "index_probes", "snapshot_age_seconds", "slow",
                           "ok",         "sql"};
    for (const obs::QueryLogRecord& r : exec_.query_log->Tail(50)) {
      result.rows.push_back(Row{
          Value::String(r.kind), Value::Double(r.wall_seconds),
          Value::Double(r.modeled_seconds), Value::Int64(static_cast<int64_t>(r.rows)),
          Value::Int64(static_cast<int64_t>(r.bytes_decoded)),
          Value::Int64(static_cast<int64_t>(r.stripe_cache_hits)),
          Value::Int64(static_cast<int64_t>(r.index_probes)),
          Value::Double(r.snapshot_age_seconds), Value::Bool(r.slow),
          Value::Bool(r.ok), Value::String(r.ok ? r.sql : r.sql + " -- " + r.error)});
    }
    return result;
  }

  if (exec_.metrics == nullptr) {
    return Status::InvalidArgument(
        "SHOW STATS requires the session metrics registry (observability on)");
  }
  const obs::MetricsSnapshot snap = exec_.metrics->Snapshot();

  if (stmt.what == ShowStatsStmt::What::kHistograms) {
    // Windowed percentiles come from the recorder's window when one is wired
    // (its clock drives slot rotation); lifetime percentiles always render.
    std::map<std::string, obs::HistogramSnapshot> window;
    if (exec_.recorder != nullptr) window = exec_.recorder->WindowSnapshots();
    result.column_names = {"histogram",  "count",      "p50",        "p95",
                           "p99",        "max",        "window_count",
                           "window_p50", "window_p95", "window_p99"};
    for (const auto& [name, h] : snap.histograms) {
      obs::HistogramSnapshot w;
      auto it = window.find(name);
      if (it != window.end()) w = it->second;
      result.rows.push_back(Row{
          Value::String(name), Value::Int64(static_cast<int64_t>(h.count)),
          Value::Int64(static_cast<int64_t>(h.ValueAtQuantile(0.50))),
          Value::Int64(static_cast<int64_t>(h.ValueAtQuantile(0.95))),
          Value::Int64(static_cast<int64_t>(h.ValueAtQuantile(0.99))),
          Value::Int64(static_cast<int64_t>(h.max)),
          Value::Int64(static_cast<int64_t>(w.count)),
          Value::Int64(static_cast<int64_t>(w.ValueAtQuantile(0.50))),
          Value::Int64(static_cast<int64_t>(w.ValueAtQuantile(0.95))),
          Value::Int64(static_cast<int64_t>(w.ValueAtQuantile(0.99)))});
    }
    return result;
  }

  result.column_names = {"metric", "kind", "value"};
  for (const auto& [name, v] : snap.counters) {
    result.rows.push_back(Row{Value::String(name), Value::String("counter"),
                              Value::Double(static_cast<double>(v))});
  }
  for (const auto& [name, v] : snap.gauges) {
    result.rows.push_back(Row{Value::String(name), Value::String("gauge"),
                              Value::Double(static_cast<double>(v))});
  }
  for (const auto& [name, v] : snap.views) {
    result.rows.push_back(
        Row{Value::String(name), Value::String("view"), Value::Double(v)});
  }
  return result;
}

}  // namespace dtl::sql
