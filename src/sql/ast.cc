#include "sql/ast.h"

namespace dtl::sql {

bool Expr::Equals(const Expr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kLiteral:
      return literal.Compare(other.literal) == 0 &&
             literal.is_null() == other.literal.is_null();
    case Kind::kColumnRef:
      return qualifier == other.qualifier && column == other.column;
    case Kind::kBinary:
    case Kind::kUnary:
      if (op != other.op) return false;
      break;
    case Kind::kFuncCall:
      if (func_name != other.func_name || star_arg != other.star_arg) return false;
      break;
    case Kind::kIsNull:
    case Kind::kInList:
      if (negated != other.negated) return false;
      break;
  }
  if (args.size() != other.args.size()) return false;
  for (size_t i = 0; i < args.size(); ++i) {
    if (!args[i]->Equals(*other.args[i])) return false;
  }
  return true;
}

ExprPtr Expr::Clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->literal = literal;
  copy->qualifier = qualifier;
  copy->column = column;
  copy->op = op;
  copy->func_name = func_name;
  copy->star_arg = star_arg;
  copy->negated = negated;
  copy->args.reserve(args.size());
  for (const auto& a : args) copy->args.push_back(a->Clone());
  return copy;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.is_string() ? "'" + literal.ToString() + "'" : literal.ToString();
    case Kind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case Kind::kBinary:
      return "(" + args[0]->ToString() + " " + op + " " + args[1]->ToString() + ")";
    case Kind::kUnary:
      return "(" + op + " " + args[0]->ToString() + ")";
    case Kind::kFuncCall: {
      std::string out = func_name + "(";
      if (star_arg) {
        out += "*";
      } else {
        for (size_t i = 0; i < args.size(); ++i) {
          if (i > 0) out += ", ";
          out += args[i]->ToString();
        }
      }
      return out + ")";
    }
    case Kind::kIsNull:
      return "(" + args[0]->ToString() + (negated ? " is not null)" : " is null)");
    case Kind::kInList: {
      std::string out = "(" + args[0]->ToString() + (negated ? " not in (" : " in (");
      for (size_t i = 1; i < args.size(); ++i) {
        if (i > 1) out += ", ";
        out += args[i]->ToString();
      }
      return out + "))";
    }
  }
  return "?";
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->op = std::move(op);
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeUnary(std::string op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kUnary;
  e->op = std::move(op);
  e->args.push_back(std::move(operand));
  return e;
}

}  // namespace dtl::sql
